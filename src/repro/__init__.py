"""repro — a Python reproduction of ASTRA-sim 2.0 (ISPASS 2023).

A discrete-event simulator for distributed DNN training platforms with:

- a graph-based execution engine over Chakra-style execution traces
  (arbitrary parallelism: DP / MP / PP / hybrid / expert);
- a multi-dimensional hierarchical network taxonomy
  (``Ring(4)_FC(2)_Switch(8)``) with an analytical backend and a
  packet-level Garnet-lite backend;
- collective scheduling (baseline hierarchical and Themis greedy);
- memory models: local HBM, disaggregated hierarchical pools, in-switch
  collectives, and a ZeRO-Infinity baseline.

Quickstart::

    import repro

    topo = repro.parse_topology("Ring(4)_Switch(2)", [200, 50])
    traces = repro.generate_single_collective(
        topo, repro.CollectiveType.ALL_REDUCE, payload_bytes=1 << 30)
    result = repro.simulate(traces, repro.SystemConfig(topology=topo))
    print(f"All-Reduce took {result.total_time_us:.1f} us")
"""

from repro.core import (
    CollectiveRecord,
    DeadlockError,
    ExecutionEngine,
    RunResult,
    Simulator,
    SystemConfig,
    simulate,
)
from repro.events import EventEngine
from repro.faults import (
    CheckpointConfig,
    FaultKind,
    FaultSchedule,
    FaultSpec,
    parse_faults,
)
from repro.memory import (
    HierMemConfig,
    HierarchicalRemoteMemory,
    InSwitchCollectiveMemory,
    LocalMemory,
    MemoryRequest,
    ZeroInfinityConfig,
    ZeroInfinityMemory,
)
from repro.network import (
    AnalyticalNetwork,
    BuildingBlock,
    DimSpec,
    FlowLevelNetwork,
    GarnetLiteNetwork,
    MultiDimTopology,
    TopologyError,
    parse_topology,
)
from repro.stats import (
    Activity,
    Breakdown,
    ResilienceReport,
    format_breakdown_table,
    format_table,
)
from repro.system import RooflineCompute, SendRecvCollectiveExecutor, make_scheduler
from repro.telemetry import (
    Telemetry,
    TelemetryConfig,
    TelemetryError,
    TelemetryReport,
    TraceLevel,
)
from repro.trace import (
    CollectiveType,
    ETNode,
    ExecutionTrace,
    NodeType,
    TensorLocation,
    load_trace,
    save_trace,
)
from repro.validate import (
    ConformanceReport,
    InvariantChecker,
    InvariantConfig,
    InvariantError,
    InvariantReport,
    InvariantViolation,
    run_conformance_suite,
    run_metamorphic_suite,
)
from repro.workload import (
    ParallelismSpec,
    dlrm_paper,
    generate_data_parallel,
    generate_dlrm,
    generate_fsdp,
    generate_megatron_hybrid,
    generate_moe,
    generate_pipeline_parallel,
    generate_single_collective,
    gpt3_175b,
    moe_1t,
    transformer_1t,
)

__version__ = "2.0.0"

__all__ = [
    "Activity",
    "AnalyticalNetwork",
    "Breakdown",
    "BuildingBlock",
    "CheckpointConfig",
    "CollectiveRecord",
    "CollectiveType",
    "ConformanceReport",
    "DeadlockError",
    "DimSpec",
    "ETNode",
    "EventEngine",
    "ExecutionEngine",
    "ExecutionTrace",
    "FaultKind",
    "FaultSchedule",
    "FaultSpec",
    "FlowLevelNetwork",
    "GarnetLiteNetwork",
    "HierMemConfig",
    "HierarchicalRemoteMemory",
    "InSwitchCollectiveMemory",
    "InvariantChecker",
    "InvariantConfig",
    "InvariantError",
    "InvariantReport",
    "InvariantViolation",
    "LocalMemory",
    "MemoryRequest",
    "MultiDimTopology",
    "NodeType",
    "ParallelismSpec",
    "ResilienceReport",
    "RooflineCompute",
    "RunResult",
    "SendRecvCollectiveExecutor",
    "Simulator",
    "SystemConfig",
    "Telemetry",
    "TelemetryConfig",
    "TelemetryError",
    "TelemetryReport",
    "TensorLocation",
    "TopologyError",
    "TraceLevel",
    "ZeroInfinityConfig",
    "ZeroInfinityMemory",
    "dlrm_paper",
    "format_breakdown_table",
    "format_table",
    "generate_data_parallel",
    "generate_dlrm",
    "generate_fsdp",
    "generate_megatron_hybrid",
    "generate_moe",
    "generate_pipeline_parallel",
    "generate_single_collective",
    "gpt3_175b",
    "load_trace",
    "make_scheduler",
    "moe_1t",
    "parse_faults",
    "parse_topology",
    "run_conformance_suite",
    "run_metamorphic_suite",
    "save_trace",
    "simulate",
    "transformer_1t",
    "__version__",
]

"""Sweep campaigns: declarative design-space exploration, in parallel.

The scale-out layer for the paper's headline usage model — "many cheap
analytical runs" over topology/bandwidth/workload grids (Table V,
Fig. 9b, Sec. IV-C):

- :class:`SweepSpec` — a grid/zip/list grammar over run-config fields
  that expands to an ordered list of fully-resolved configurations;
- :class:`CampaignRunner` — executes a spec serially (``jobs=0``) or
  over a ``spawn`` process pool, merging schema-v2 result payloads back
  in spec order so output is bit-identical regardless of worker count;
- :class:`RunCache` — a content-addressed on-disk result cache keyed by
  canonical config JSON + code fingerprint, so re-running a sweep only
  simulates changed points;
- :mod:`repro.campaign.aggregate` — per-point CSV/text tables and
  per-sweep summary statistics.

CLI equivalent: ``repro sweep --grid "payload_mib=64|256" --jobs 4
--cache-dir .sweep-cache --out results.json``.
"""

from repro.campaign.aggregate import (
    campaign_rows,
    campaign_summary,
    campaign_table,
    campaign_to_csv,
    dump_campaign_json,
    metric_series,
    results_by_config,
    varying_fields,
)
from repro.campaign.cache import CACHE_SCHEMA_VERSION, RunCache, code_fingerprint
from repro.campaign.runner import (
    CAMPAIGN_SCHEMA_VERSION,
    CampaignError,
    CampaignResult,
    CampaignRunner,
    PointConfigError,
    base_point_from_args,
    canonical_campaign_json,
    default_fields,
    normalize_point,
    point_to_argv,
    run_point,
)
from repro.campaign.spec import SweepSpec, SweepSpecError, canonical_json

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CAMPAIGN_SCHEMA_VERSION",
    "CampaignError",
    "CampaignResult",
    "CampaignRunner",
    "PointConfigError",
    "RunCache",
    "SweepSpec",
    "SweepSpecError",
    "base_point_from_args",
    "campaign_rows",
    "campaign_summary",
    "campaign_table",
    "campaign_to_csv",
    "canonical_campaign_json",
    "canonical_json",
    "code_fingerprint",
    "default_fields",
    "dump_campaign_json",
    "metric_series",
    "normalize_point",
    "point_to_argv",
    "results_by_config",
    "run_point",
    "varying_fields",
]

"""Sweep campaigns: declarative design-space exploration, in parallel.

The scale-out layer for the paper's headline usage model — "many cheap
analytical runs" over topology/bandwidth/workload grids (Table V,
Fig. 9b, Sec. IV-C):

- :class:`SweepSpec` — a grid/zip/list grammar over run-config fields
  that expands to an ordered list of fully-resolved configurations;
- :class:`CampaignRunner` — executes a spec serially (``jobs=0``) or
  over a persistent **warm** worker fleet (:mod:`repro.campaign.pool`):
  pre-imported workers reused across sweeps, batched point dispatch,
  and base-config broadcast; results merge back in spec order so output
  is bit-identical regardless of worker count, batch size, or worker
  reuse;
- :class:`RunCache` — a content-addressed on-disk result cache keyed by
  canonical config JSON + code fingerprint, so re-running a sweep only
  simulates changed points;
- :mod:`repro.campaign.serve` — the ``repro serve`` HTTP daemon:
  ``POST /run`` / ``POST /sweep`` (NDJSON streaming) over the shared
  fleet and cache, with bounded-queue 429 backpressure;
- :mod:`repro.campaign.aggregate` — per-point CSV/text tables and
  per-sweep summary statistics.

CLI equivalent: ``repro sweep --grid "payload_mib=64|256" --jobs 4
--cache-dir .sweep-cache --out results.json``, or ``repro serve
--jobs 4 --cache-dir .sweep-cache``.
"""

from repro.campaign.aggregate import (
    campaign_rows,
    campaign_summary,
    campaign_table,
    campaign_to_csv,
    dump_campaign_json,
    metric_series,
    results_by_config,
    varying_fields,
)
from repro.campaign.cache import (
    CACHE_SCHEMA_VERSION,
    RunCache,
    code_fingerprint,
    fingerprint_sources,
)
from repro.campaign.pool import (
    WarmPool,
    get_shared_pool,
    pick_start_method,
    plan_batches,
    run_batch,
    shared_pool_stats,
    shutdown_shared_pool,
    split_common_base,
)
from repro.campaign.runner import (
    CAMPAIGN_SCHEMA_VERSION,
    CampaignError,
    CampaignResult,
    CampaignRunner,
    PointConfigError,
    base_point_from_args,
    canonical_campaign_json,
    default_fields,
    normalize_point,
    point_to_argv,
    run_point,
)
from repro.campaign.serve import (
    ReproServer,
    ServeConfig,
    serve_forever,
    serve_in_thread,
)
from repro.campaign.spec import SweepSpec, SweepSpecError, canonical_json

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CAMPAIGN_SCHEMA_VERSION",
    "CampaignError",
    "CampaignResult",
    "CampaignRunner",
    "PointConfigError",
    "ReproServer",
    "RunCache",
    "ServeConfig",
    "SweepSpec",
    "SweepSpecError",
    "WarmPool",
    "base_point_from_args",
    "campaign_rows",
    "campaign_summary",
    "campaign_table",
    "campaign_to_csv",
    "canonical_campaign_json",
    "canonical_json",
    "code_fingerprint",
    "default_fields",
    "dump_campaign_json",
    "fingerprint_sources",
    "get_shared_pool",
    "metric_series",
    "normalize_point",
    "pick_start_method",
    "plan_batches",
    "point_to_argv",
    "results_by_config",
    "run_batch",
    "run_point",
    "serve_forever",
    "serve_in_thread",
    "shared_pool_stats",
    "shutdown_shared_pool",
    "split_common_base",
    "varying_fields",
]

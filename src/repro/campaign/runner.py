"""Parallel campaign execution: warm-worker fan-out with spec-order merge.

A :class:`CampaignRunner` takes a :class:`~repro.campaign.spec.SweepSpec`,
expands it, and executes every point through an *executor* — by default
:func:`run_point`, which replays the point through the real ``repro run``
argument parser and :func:`repro.cli.simulate_from_args`, so a sweep
point is exactly a CLI invocation.

Execution contract:

- ``jobs=0`` runs serially in-process; ``jobs>=1`` fans out over a
  persistent **warm** worker fleet (:mod:`repro.campaign.pool`):
  pre-imported workers reused across sweeps, points dispatched in
  batches, and the fields common to every point broadcast once per task
  instead of once per point.  Results are merged back **in spec
  order**, and each point's payload is a schema-v2 ``result_to_dict``
  document, so the merged output is bit-identical regardless of worker
  count, batch size, worker reuse, or completion order.
- :meth:`CampaignRunner.stream` yields merged point records
  *incrementally* in spec order as they complete — the backbone of the
  ``repro serve`` daemon's NDJSON sweep streaming; :meth:`CampaignRunner.run`
  is the drive-to-completion wrapper around it.
- A failed point becomes a structured error record (exception type,
  message, traceback, config) in the merged output instead of poisoning
  the pool; a *crashed worker* restarts the fleet and retries the
  affected points before recording errors; ``fail_fast=True`` restores
  abort-on-first-error; ``KeyboardInterrupt`` tears the fleet down
  cleanly.
- With a cache directory, results are looked up in (and written back
  to) a content-addressed :class:`~repro.campaign.cache.RunCache` keyed
  by canonical config JSON + code fingerprint; only cache misses are
  simulated.  Hit/miss counters surface through a
  :class:`repro.telemetry.MetricsRegistry`.
"""

from __future__ import annotations

from contextlib import redirect_stderr
from dataclasses import dataclass, field
from io import StringIO
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.campaign.cache import RunCache
from repro.campaign.pool import error_record as _error_record
from repro.campaign.spec import SweepSpec, SweepSpecError, canonical_json
from repro.telemetry import MetricsRegistry

CAMPAIGN_SCHEMA_VERSION = 1


class CampaignError(RuntimeError):
    """A campaign aborted (fail-fast point failure or broken pool)."""


class PointConfigError(ValueError):
    """A sweep point does not form a valid run configuration."""


# -- the default executor: one point == one `repro run` invocation ---------------------


def _dims_csv(value: Any) -> str:
    """Canonical comma-list form for bandwidths/latencies fields."""
    if isinstance(value, (list, tuple)):
        return ",".join(format(float(v), "g") for v in value)
    if value in ("", None):
        return ""
    return ",".join(format(float(v), "g") for v in str(value).split(","))


def _bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return bool(value)
    text = str(value).strip().lower()
    if text in ("1", "true", "yes", "on"):
        return True
    if text in ("0", "false", "no", "off", ""):
        return False
    raise ValueError(f"not a boolean: {value!r}")


def _faults_list(value: Any) -> Optional[List[str]]:
    if value is None:
        return None
    if isinstance(value, str):
        return [value]
    return [str(v) for v in value]


def _opt_int(value: Any) -> Optional[int]:
    return None if value is None else int(value)


#: Sweepable fields of the default executor and their normalizers; the
#: names mirror the ``repro run`` flags with dashes as underscores.
FIELD_TYPES: Dict[str, Callable[[Any], Any]] = {
    "topology": str,
    "bandwidths": _dims_csv,
    "latencies": _dims_csv,
    "workload": str,
    "model": str,
    "model_json": str,
    "batch": int,
    "seq_len": int,
    "payload_mib": float,
    "scheduler": str,
    "backend": str,
    "packet_bytes": int,
    "train_packets": int,
    "granularity": str,
    "escalation_threshold": float,
    "deescalation_hysteresis": float,
    "chunks": int,
    "mp": int,
    "dp": int,
    "pp": int,
    "ep": int,
    "microbatches": int,
    "peak_tflops": float,
    "hbm_gbps": float,
    "memory_model": str,
    "fabric_bw_gbps": float,
    "group_bw_gbps": float,
    "remote_path_gbps": float,
    "inswitch": _bool,
    "faults": _faults_list,
    "fault_seed": _opt_int,
    "checkpoint_interval_ms": float,
    "checkpoint_gib": float,
    "trace_level": str,
    "check_invariants": _bool,
}

_default_fields_cache: Optional[Dict[str, Any]] = None


def default_fields() -> Dict[str, Any]:
    """Default value of every sweepable field, from the real CLI parser.

    Parsing a dummy ``run`` command keeps campaign defaults in lockstep
    with the CLI's — a flag default changed in one place changes both.
    """
    global _default_fields_cache
    if _default_fields_cache is None:
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--topology", "Ring(2)", "--bandwidths", "1"])
        fields = {name: getattr(args, name) for name in FIELD_TYPES}
        fields["topology"] = ""
        fields["bandwidths"] = ""
        _default_fields_cache = fields
    return dict(_default_fields_cache)


def normalize_point(point: Mapping[str, Any]) -> Dict[str, Any]:
    """A fully-resolved, canonically-typed config for one run.

    Fills every field the default executor knows with the CLI default,
    applies the field's type conversion (so ``"64"`` from a ``--grid``
    axis and ``64`` from the Python API hash identically in the run
    cache), and rejects unknown fields.
    """
    unknown = sorted(set(point) - set(FIELD_TYPES))
    if unknown:
        raise PointConfigError(
            f"unknown sweep field(s) {unknown}; valid fields: "
            + ", ".join(sorted(FIELD_TYPES)))
    resolved = default_fields()
    for name, value in point.items():
        try:
            resolved[name] = FIELD_TYPES[name](value)
        except (TypeError, ValueError) as exc:
            raise PointConfigError(
                f"field {name!r}: cannot interpret {value!r} ({exc})")
    if not resolved["topology"] or not resolved["bandwidths"]:
        raise PointConfigError(
            "every point needs 'topology' and 'bandwidths' (set them in "
            "the base config or a sweep axis)")
    return resolved


def point_to_argv(point: Mapping[str, Any]) -> List[str]:
    """The ``repro run`` argument vector equivalent to a resolved point."""
    resolved = normalize_point(point)
    argv: List[str] = []
    for name, value in resolved.items():
        flag = "--" + name.replace("_", "-")
        if name in ("inswitch", "check_invariants"):
            if value:
                argv.append(flag)
        elif name == "faults":
            for spec_text in value or ():
                argv.extend([flag, spec_text])
        elif name == "fault_seed":
            if value is not None:
                argv.extend([flag, str(value)])
        elif name in ("latencies", "model", "model_json"):
            if value:
                argv.extend([flag, value])
        else:
            argv.extend([flag, str(value)])
    return argv


def run_point(point: Mapping[str, Any]) -> Dict[str, Any]:
    """Default executor: simulate one point via the ``repro run`` path.

    Returns the schema-v2 ``result_to_dict`` payload.  Runs in worker
    processes, so everything it touches must be importable there.
    """
    from repro.cli import build_parser, simulate_from_args
    from repro.stats.export import result_to_dict

    argv = ["run"] + point_to_argv(point)
    capture = StringIO()
    try:
        with redirect_stderr(capture):
            args = build_parser().parse_args(argv)
        _topology, result, _resilience = simulate_from_args(args)
    except SystemExit as exc:
        # argparse/validation failures surface as SystemExit; convert to a
        # real exception so the error record carries the message.
        message = str(exc) if str(exc) not in ("", "2") else ""
        raise PointConfigError(
            (message or capture.getvalue().strip() or "invalid run "
             "configuration")) from None
    return result_to_dict(result)


run_point.normalize = normalize_point  # type: ignore[attr-defined]


def base_point_from_args(args) -> Dict[str, Any]:
    """The base config dict from a parsed ``sweep`` command namespace."""
    base = {}
    for name in FIELD_TYPES:
        value = getattr(args, name)
        if name in ("topology", "bandwidths", "latencies") and not value:
            continue  # may come from a sweep axis; keep the base sparse
        base[name] = value
    return base


# -- pool plumbing ---------------------------------------------------------------------


def _pool_task(executor: Callable[[Mapping[str, Any]], Dict[str, Any]],
               point: Mapping[str, Any]) -> Dict[str, Any]:
    """Execute one point, converting failures to structured outcomes."""
    try:
        return {"ok": True, "result": executor(point)}
    except (Exception, SystemExit) as exc:  # noqa: BLE001 - error record
        return {"ok": False, "error": _error_record(exc)}


def _wait_any(futures: Sequence) -> set:
    """Block until at least one future completes (test seam for ^C paths)."""
    from concurrent.futures import FIRST_COMPLETED, wait

    done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
    return done


def _resolve_executor(
    executor: Union[None, str, Callable[[Mapping[str, Any]], Dict[str, Any]]],
) -> Callable[[Mapping[str, Any]], Dict[str, Any]]:
    if executor is None:
        return run_point
    if callable(executor):
        return executor
    module_name, sep, attr = str(executor).partition(":")
    if not sep:
        raise SweepSpecError(
            f"executor {executor!r} is not of the form 'module:function'")
    import importlib

    module = importlib.import_module(module_name)
    fn = getattr(module, attr, None)
    if not callable(fn):
        raise SweepSpecError(
            f"executor {executor!r} does not name a callable")
    return fn


# -- the runner ------------------------------------------------------------------------


#: Metrics describing *how* the campaign executed (batching, crash
#: recovery) rather than what it computed.  Excluded from the merged
#: document so identical sweeps dump byte-identical documents regardless
#: of jobs count, batch size, or worker reuse; still readable on
#: ``CampaignResult.telemetry`` for observability and tests.
EXECUTION_METRICS = frozenset(
    {"batches_dispatched", "worker_restarts", "points_retried"})


@dataclass
class CampaignResult:
    """Merged outcome of one campaign, in spec order."""

    spec: SweepSpec
    points: List[Dict[str, Any]]
    jobs: int
    telemetry: MetricsRegistry = field(default_factory=MetricsRegistry)
    cache_counters: Optional[Dict[str, int]] = None

    @property
    def results(self) -> List[Optional[Dict[str, Any]]]:
        """Per-point result payloads (None where the point failed)."""
        return [p["result"] for p in self.points]

    @property
    def errors(self) -> List[Dict[str, Any]]:
        return [p for p in self.points if p["error"] is not None]

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "schema_version": CAMPAIGN_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "points": [dict(p) for p in self.points],
            "telemetry": {"metrics": [m for m in self.telemetry.to_list()
                                      if m["name"] not in EXECUTION_METRICS]},
        }
        if self.cache_counters is not None:
            doc["cache"] = dict(self.cache_counters)
        return doc

    def canonical_results_json(self) -> str:
        """Canonical JSON of the simulation content only.

        Strips everything that legitimately varies with cache state or
        host (``cached`` flags, cache counters, tracebacks — worker and
        in-process stacks differ), leaving exactly what must be
        bit-identical across ``jobs`` counts and cache temperatures.
        """
        return canonical_campaign_json(self.to_dict())


def canonical_campaign_json(doc: Mapping[str, Any]) -> str:
    """Canonical JSON of a merged campaign document's simulation content.

    See :meth:`CampaignResult.canonical_results_json`.
    """
    points = []
    for point in doc["points"]:
        error = point.get("error")
        if error is not None:
            error = {k: v for k, v in error.items() if k != "traceback"}
        points.append({
            "index": point["index"],
            "config": point["config"],
            "result": point.get("result"),
            "error": error,
        })
    return canonical_json({"spec": doc["spec"], "points": points})


#: A deterministically-crashing point gets this many fleet restarts
#: before a structured error record is written instead.
MAX_POINT_RETRIES = 2


class CampaignRunner:
    """Executes a sweep spec over a warm worker fleet and a run cache."""

    def __init__(
        self,
        jobs: int = 0,
        cache_dir: Optional[str] = None,
        fail_fast: bool = False,
        executor: Union[None, str,
                        Callable[[Mapping[str, Any]], Dict[str, Any]]] = None,
        batch_size: int = 0,
        warm: bool = True,
        start_method: Optional[str] = None,
        cache: Optional[RunCache] = None,
    ) -> None:
        """``batch_size=0`` auto-sizes chunks (~2 tasks per worker).

        ``warm=True`` (default) fans out over the process-wide shared
        fleet from :func:`repro.campaign.pool.get_shared_pool`, reusing
        warm workers across sweeps; ``warm=False`` builds a private pool
        torn down when the campaign finishes (cold fan-out — mainly for
        benchmarking the difference and isolating crash tests).
        """
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        if batch_size < 0:
            raise ValueError(f"batch_size must be >= 0, got {batch_size}")
        self.jobs = jobs
        self.fail_fast = fail_fast
        self.executor = _resolve_executor(executor)
        self.batch_size = batch_size
        self.warm = warm
        self.start_method = start_method
        if cache is not None:
            self.cache = cache
        else:
            self.cache = RunCache(cache_dir) if cache_dir else None

    # -- execution ---------------------------------------------------------------

    def run(self, spec: SweepSpec) -> CampaignResult:
        """Execute the spec to completion; the merged result in spec order."""
        stream = self.stream(spec)
        while True:
            try:
                next(stream)
            except StopIteration as stop:
                return stop.value

    def stream(self, spec: SweepSpec):
        """Generator of merged point records, in spec order, as they finish.

        Cached points stream immediately; executed points stream as soon
        as every earlier-indexed point has streamed (the ordered merge
        the campaign contract requires).  The generator's return value
        (``StopIteration.value``) is the complete :class:`CampaignResult`
        — ``run()`` and the serve daemon's NDJSON endpoint are both thin
        consumers of this.
        """
        points = spec.expand()
        normalize = getattr(self.executor, "normalize", None)
        if normalize is not None:
            points = [normalize(p) for p in points]
        result = CampaignResult(spec=spec, points=[], jobs=self.jobs)
        metrics = result.telemetry
        metrics.counter("campaign", "points_total").inc(len(points))

        merged: List[Optional[Dict[str, Any]]] = [None] * len(points)
        pending: List[int] = []
        for index, point in enumerate(points):
            cached = self.cache.get(point) if self.cache is not None else None
            if cached is not None:
                merged[index] = {"index": index, "config": point,
                                 "cached": True, "result": cached,
                                 "error": None}
            else:
                pending.append(index)

        if self.jobs == 0 or not pending:
            outcome_iter = self._iter_serial(points, pending)
        else:
            outcome_iter = self._iter_pool(points, pending, metrics)

        emitted = 0
        try:
            # Leading cached points stream before any execution happens.
            while emitted < len(points) and merged[emitted] is not None:
                result.points.append(merged[emitted])
                yield merged[emitted]
                emitted += 1
            for index, outcome in outcome_iter:
                record: Dict[str, Any] = {
                    "index": index, "config": points[index], "cached": False,
                    "result": None, "error": None,
                }
                if outcome["ok"]:
                    record["result"] = outcome["result"]
                    if self.cache is not None:
                        self.cache.put(points[index], outcome["result"])
                else:
                    record["error"] = outcome["error"]
                    metrics.counter("campaign", "points_failed").inc()
                merged[index] = record
                if self.fail_fast and not outcome["ok"]:
                    self._abort(index, outcome["error"], points[index])
                while emitted < len(points) and merged[emitted] is not None:
                    result.points.append(merged[emitted])
                    yield merged[emitted]
                    emitted += 1
        finally:
            # Closing the stream mid-sweep (a disconnected HTTP client,
            # fail-fast abort) must release pool resources promptly.
            close = getattr(outcome_iter, "close", None)
            if close is not None:
                close()

        metrics.counter("campaign", "points_executed").inc(len(pending))
        if self.cache is not None:
            counters = self.cache.counters()
            result.cache_counters = counters
            metrics.counter("campaign", "cache_hits").inc(counters["hits"])
            metrics.counter("campaign", "cache_misses").inc(counters["misses"])
            metrics.counter("campaign", "cache_corrupted").inc(
                counters["corrupted"])
        return result

    def _abort(self, index: int, error: Mapping[str, Any],
               point: Mapping[str, Any]) -> None:
        raise CampaignError(
            f"point {index} failed ({error['type']}: {error['message']}); "
            f"config {canonical_json(dict(point))}")

    # -- serial path -------------------------------------------------------------

    def _iter_serial(
        self, points: Sequence[Mapping[str, Any]], pending: Sequence[int],
    ) -> Iterator[Tuple[int, Dict[str, Any]]]:
        for index in pending:
            yield index, _pool_task(self.executor, points[index])

    # -- warm-fleet path ---------------------------------------------------------

    def _iter_pool(
        self, points: Sequence[Mapping[str, Any]], pending: Sequence[int],
        metrics: MetricsRegistry,
    ) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Fan pending points out over the warm fleet in batches.

        Yields ``(index, outcome)`` in completion order (the caller
        re-orders).  A broken pool (worker crash) is restarted and the
        affected points retried up to :data:`MAX_POINT_RETRIES` times as
        singleton batches — isolating a crashing point from the innocent
        points that shared its batch — before a structured error record
        is emitted.  ``KeyboardInterrupt`` cancels outstanding batches
        and tears the fleet down before re-raising.
        """
        from concurrent.futures.process import BrokenProcessPool

        from repro.campaign.pool import (
            WarmPool,
            get_shared_pool,
            plan_batches,
            run_batch,
            shutdown_shared_pool,
            split_common_base,
        )

        if self.warm:
            pool = get_shared_pool(self.jobs, self.start_method)
        else:
            pool = WarmPool(min(self.jobs, len(pending)), self.start_method)
        base, overrides = split_common_base([points[i] for i in pending])
        by_index = dict(zip(pending, overrides))
        batches = plan_batches(pending, min(pool.workers, len(pending)),
                               self.batch_size)
        metrics.counter("campaign", "batches_dispatched").inc(len(batches))

        futures: Dict[Any, List[int]] = {}
        generation = pool.generation

        def submit(indices: List[int]) -> None:
            items = [(i, by_index[i]) for i in indices]
            futures[pool.submit(run_batch, self.executor, base,
                                items)] = indices

        retries: Dict[int, int] = {}
        try:
            for batch in batches:
                submit(batch)
            while futures:
                for future in _wait_any(list(futures)):
                    indices = futures.pop(future)
                    exc = future.exception()
                    if exc is None:
                        for index, outcome in future.result():
                            yield index, outcome
                        continue
                    if isinstance(exc, BrokenProcessPool):
                        # One worker death breaks every in-flight future.
                        # Restart the fleet once (the generation guard
                        # makes latecomers no-ops) and retry the affected
                        # points in isolation.
                        if pool.restart(generation):
                            metrics.counter("campaign",
                                            "worker_restarts").inc()
                        generation = pool.generation
                        for index in indices:
                            attempts = retries.get(index, 0)
                            if attempts >= MAX_POINT_RETRIES:
                                yield index, {"ok": False,
                                              "error": _error_record(exc)}
                            else:
                                retries[index] = attempts + 1
                                metrics.counter("campaign",
                                                "points_retried").inc()
                                submit([index])
                    else:
                        # Pool-level failure that is not a crash (e.g. an
                        # unpicklable payload): record and move on.
                        for index in indices:
                            yield index, {"ok": False,
                                          "error": _error_record(exc)}
        except KeyboardInterrupt:
            for future in futures:
                future.cancel()
            if self.warm:
                shutdown_shared_pool()
            else:
                pool.shutdown()
            raise
        finally:
            for future in futures:
                future.cancel()
            if not self.warm:
                pool.shutdown()

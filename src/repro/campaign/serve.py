"""``repro serve``: an HTTP daemon over the warm simulator fleet.

The traffic story on top of the campaign engine: many concurrent
clients, one process-wide warm worker fleet
(:mod:`repro.campaign.pool`), one shared content-addressed
:class:`~repro.campaign.cache.RunCache` deduplicating identical requests
across clients.  Stdlib only (:class:`http.server.ThreadingHTTPServer`)
— no framework dependency.

Endpoints:

- ``POST /run`` — body: a JSON object of sweep-point fields (the same
  fields ``repro run`` flags expose, e.g. ``{"topology": "Ring(4)",
  "bandwidths": "100", "workload": "allreduce"}``).  Response: the
  schema-v2 ``result_to_dict`` document, bit-identical to an in-process
  run of the same config; ``X-Repro-Cache: hit|miss`` reports dedup.
- ``POST /sweep`` — body: a :class:`~repro.campaign.spec.SweepSpec`
  document (``base``/``grid``/``zip``/``points``), optionally wrapped as
  ``{"spec": {...}, "jobs": N, "batch_size": N, "fail_fast": bool}``.
  Response: ``application/x-ndjson`` — one merged point record per
  line, streamed **in spec order as points complete**, terminated by a
  ``{"summary": ...}`` line (or ``{"aborted": ...}`` on a fail-fast
  abort).
- ``GET /healthz`` — liveness: ``{"status": "ok"}``.
- ``GET /stats`` — telemetry counters (``campaign/*`` per-request
  counters), cache counters, fleet state, uptime.

Backpressure: a bounded admission gate caps requests in flight; beyond
``queue_depth`` the daemon answers ``429 Too Many Requests`` with a
``Retry-After`` header instead of queueing unboundedly — saturated
fleets shed load rather than stack it.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Mapping, Optional

from repro.campaign.cache import RunCache
from repro.campaign.runner import (
    CampaignError,
    CampaignRunner,
    PointConfigError,
    run_point,
)
from repro.campaign.spec import SweepSpec, SweepSpecError
from repro.telemetry import MetricsRegistry

SERVE_SCHEMA_VERSION = 1

#: Option keys accepted alongside ``spec`` in a wrapped /sweep body.
_SWEEP_OPTIONS = ("jobs", "batch_size", "fail_fast")


@dataclass
class ServeConfig:
    """Daemon configuration (mirrors the ``repro serve`` CLI flags)."""

    host: str = "127.0.0.1"
    port: int = 8351
    jobs: int = 0
    cache_dir: Optional[str] = None
    queue_depth: int = 8
    batch_size: int = 0
    max_body_bytes: int = 8 << 20
    quiet: bool = True


class _AdmissionGate:
    """Bounded in-flight request counter: admit or reject, never queue."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.inflight = 0
        self._lock = threading.Lock()

    def enter(self) -> bool:
        with self._lock:
            if self.inflight >= self.capacity:
                return False
            self.inflight += 1
            return True

    def leave(self) -> None:
        with self._lock:
            self.inflight -= 1


def _canon(doc: Any) -> bytes:
    """The daemon's canonical response encoding (sorted keys, compact).

    The same serialisation a client would produce locally from the
    schema-v2 dict — which is what makes 'served response == in-process
    run' a *byte* comparison, not just a structural one.
    """
    return (json.dumps(doc, sort_keys=True,
                       separators=(",", ":")) + "\n").encode()


class ReproServer(ThreadingHTTPServer):
    """The serving daemon: shared cache, shared fleet, request telemetry."""

    daemon_threads = True

    def __init__(self, config: ServeConfig,
                 executor: Optional[Callable[[Mapping[str, Any]],
                                             Dict[str, Any]]] = None) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        self.metrics_lock = threading.Lock()
        self.gate = _AdmissionGate(config.queue_depth)
        self.cache = (RunCache(config.cache_dir)
                      if config.cache_dir else None)
        self.executor = executor if executor is not None else run_point
        self.started_at = time.time()
        super().__init__((config.host, config.port), _RequestHandler)

    # -- helpers shared by handler threads ---------------------------------------

    def count(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        with self.metrics_lock:
            self.metrics.counter("campaign", name, **labels).inc(amount)

    def runner(self, options: Mapping[str, Any]) -> CampaignRunner:
        jobs = int(options.get("jobs", self.config.jobs))
        if jobs < 0:
            raise PointConfigError(f"jobs must be >= 0, got {jobs}")
        return CampaignRunner(
            jobs=jobs,
            batch_size=int(options.get("batch_size",
                                       self.config.batch_size)),
            fail_fast=bool(options.get("fail_fast", False)),
            executor=self.executor,
            cache=self.cache,
        )

    def warm_up(self) -> None:
        """Pre-start the fleet so the first request pays no worker boot."""
        if self.config.jobs >= 1:
            from repro.campaign.pool import get_shared_pool

            get_shared_pool(self.config.jobs).warm_up()

    def stats(self) -> Dict[str, Any]:
        from repro.campaign.pool import shared_pool_stats

        with self.metrics_lock:
            counters = self.metrics.to_list()
        return {
            "schema_version": SERVE_SCHEMA_VERSION,
            "uptime_s": round(time.time() - self.started_at, 3),
            "inflight": self.gate.inflight,
            "queue_depth": self.gate.capacity,
            "jobs": self.config.jobs,
            "counters": counters,
            "cache": (self.cache.counters()
                      if self.cache is not None else None),
            "pool": shared_pool_stats(),
        }


class _RequestHandler(BaseHTTPRequestHandler):
    """One thread per connection; bodies are close-delimited (HTTP/1.0).

    HTTP/1.0 keeps the NDJSON sweep stream simple: no chunked framing,
    the stream ends when the daemon closes the socket after the summary
    line.
    """

    protocol_version = "HTTP/1.0"
    server_version = "repro-serve/%d" % SERVE_SCHEMA_VERSION
    server: ReproServer  # narrowed for type checkers

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.server.config.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    # -- plumbing ----------------------------------------------------------------

    def _send_json(self, status: int, doc: Any,
                   headers: Optional[Mapping[str, str]] = None) -> None:
        body = _canon(doc)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise PointConfigError("empty request body; expected JSON")
        if length > self.server.config.max_body_bytes:
            raise PointConfigError(
                f"request body of {length} bytes exceeds the "
                f"{self.server.config.max_body_bytes}-byte limit")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise PointConfigError(f"request body is not JSON: {exc}")

    # -- GET ---------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self.server.count("http_requests", endpoint="healthz")
            self._send_json(200, {"status": "ok"})
        elif self.path == "/stats":
            self.server.count("http_requests", endpoint="stats")
            self._send_json(200, self.server.stats())
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    # -- POST --------------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path not in ("/run", "/sweep"):
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})
            return
        endpoint = self.path.lstrip("/")
        self.server.count("http_requests", endpoint=endpoint)
        if not self.server.gate.enter():
            self.server.count("http_rejected", endpoint=endpoint)
            self._send_json(429, {
                "error": "server saturated: %d request(s) in flight "
                         "(queue depth %d); retry later" % (
                             self.server.gate.inflight,
                             self.server.gate.capacity),
            }, headers={"Retry-After": "1"})
            return
        try:
            if self.path == "/run":
                self._handle_run()
            else:
                self._handle_sweep()
        finally:
            self.server.gate.leave()

    def _handle_run(self) -> None:
        server = self.server
        try:
            point = self._read_body()
            if not isinstance(point, dict):
                raise PointConfigError(
                    "POST /run expects a JSON object of run-config fields")
            normalize = getattr(server.executor, "normalize", None)
            if normalize is not None:
                point = normalize(point)
            cached = (server.cache.get(point)
                      if server.cache is not None else None)
            if cached is not None:
                server.count("cache_hits")
                server.count("runs_served")
                self._send_json(200, cached,
                                headers={"X-Repro-Cache": "hit"})
                return
            result = self._execute_point(point)
            if server.cache is not None:
                server.cache.put(point, result)
            server.count("runs_served")
            server.count("points_executed")
            self._send_json(200, result, headers={"X-Repro-Cache": "miss"})
        except (PointConfigError, SweepSpecError) as exc:
            server.count("http_errors", endpoint="run")
            self._send_json(400, {"error": {"type": type(exc).__name__,
                                            "message": str(exc)}})
        except Exception as exc:  # noqa: BLE001 - daemon must not die
            server.count("http_errors", endpoint="run")
            self._send_json(500, {"error": {"type": type(exc).__name__,
                                            "message": str(exc)}})

    def _execute_point(self, point: Mapping[str, Any]) -> Dict[str, Any]:
        """One point: on the fleet when jobs >= 1, else in this thread."""
        server = self.server
        if server.config.jobs >= 1:
            from repro.campaign.pool import get_shared_pool, run_batch

            pool = get_shared_pool(server.config.jobs)
            outcomes = pool.submit(
                run_batch, server.executor, {}, [(0, dict(point))]).result()
            outcome = outcomes[0][1]
            if not outcome["ok"]:
                error = outcome["error"]
                raise PointConfigError(
                    f"{error['type']}: {error['message']}")
            return outcome["result"]
        return server.executor(point)

    def _handle_sweep(self) -> None:
        server = self.server
        try:
            doc = self._read_body()
            if not isinstance(doc, dict):
                raise PointConfigError(
                    "POST /sweep expects a JSON sweep-spec document")
            if "spec" in doc:
                spec_doc = doc["spec"]
                options = {k: doc[k] for k in _SWEEP_OPTIONS if k in doc}
            else:
                spec_doc, options = doc, {}
            spec = SweepSpec.from_dict(spec_doc)
            runner = server.runner(options)
            # Config errors must be a 400, not an in-band abort line —
            # validate every point before committing response headers.
            normalize = getattr(runner.executor, "normalize", None)
            if normalize is not None:
                for point in spec.expand():
                    normalize(point)
        except (PointConfigError, SweepSpecError) as exc:
            server.count("http_errors", endpoint="sweep")
            self._send_json(400, {"error": {"type": type(exc).__name__,
                                            "message": str(exc)}})
            return

        # Headers are committed before execution: from here on, errors
        # travel in-band as the stream's final line.
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        stream = runner.stream(spec)
        points = errors = 0
        try:
            while True:
                try:
                    record = next(stream)
                except StopIteration as stop:
                    result = stop.value
                    break
                points += 1
                errors += record["error"] is not None
                self.wfile.write(_canon(record))
                self.wfile.flush()
            server.count("sweeps_served")
            server.count("points_executed",
                         result.telemetry.value("campaign",
                                                "points_executed"))
            summary: Dict[str, Any] = {"summary": {
                "points": points,
                "errors": errors,
                "cache": result.cache_counters,
                "telemetry": {"metrics": result.telemetry.to_list()},
            }}
            self.wfile.write(_canon(summary))
        except CampaignError as exc:
            server.count("http_errors", endpoint="sweep")
            self.wfile.write(_canon({"aborted": str(exc)}))
        except (BrokenPipeError, ConnectionResetError):
            # Client went away mid-stream; runner.stream's close() has
            # already cancelled its outstanding batches.
            server.count("http_disconnects", endpoint="sweep")
        except Exception as exc:  # noqa: BLE001 - daemon must not die
            server.count("http_errors", endpoint="sweep")
            self.wfile.write(_canon({"aborted": f"{type(exc).__name__}: "
                                                f"{exc}"}))


def serve_in_thread(config: ServeConfig,
                    executor: Optional[Callable] = None) -> ReproServer:
    """Start a daemon on a background thread (tests, embedding).

    Binds immediately (``port=0`` picks an ephemeral port — read
    ``server.server_address``); call ``shutdown()`` + ``server_close()``
    to stop.
    """
    server = ReproServer(config, executor=executor)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-serve", daemon=True)
    thread.start()
    return server


def serve_forever(config: ServeConfig) -> int:
    """The ``repro serve`` CLI entry: run until interrupted."""
    from repro.campaign.pool import shutdown_shared_pool

    server = ReproServer(config)
    host, port = server.server_address[0], server.server_address[1]
    print(f"repro serve: listening on http://{host}:{port}")
    print("endpoints  : POST /run  POST /sweep  GET /healthz  GET /stats")
    if config.jobs >= 1:
        print(f"fleet      : warming {config.jobs} worker(s) ...", end=" ",
              flush=True)
        server.warm_up()
        print("ready")
    if server.cache is not None:
        print(f"cache      : {server.cache.cache_dir}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        shutdown_shared_pool()
    return 0

"""Persistent warm worker pools for campaign fan-out.

PR 4's process-pool fan-out lost to serial execution (BENCH_perf.json
recorded ``parallel_speedup: 0.42`` at ``jobs=4``) for three reasons:
every sweep built a fresh ``spawn`` pool whose workers re-imported the
entire package, every point crossed the pipe as its own task, and every
task shipped the fully-resolved ~30-field config.  This module fixes the
cost model:

- **Warm workers** — the pool prefers the ``forkserver`` start method
  and preloads :mod:`repro.campaign._preload` into the fork server, so
  each worker forks already holding a fully-imported simulator; on
  platforms without ``forkserver`` the ``spawn`` fallback pays the
  import once per worker *lifetime* via the pool initializer.
- **Persistent fleets** — :func:`get_shared_pool` hands out one
  process-wide :class:`WarmPool` that survives across sweeps (and
  across HTTP requests in ``repro serve``), so steady-state fan-out
  never pays worker start-up again.
- **Batched dispatch** — :func:`run_batch` executes a *chunk* of points
  per task instead of one future per point.
- **Base-config broadcast** — :func:`split_common_base` factors the
  fields shared by every pending point into one base dict sent once per
  task; each point ships only its per-point overrides.

Crash containment: a worker death breaks the underlying
:class:`~concurrent.futures.ProcessPoolExecutor`; :meth:`WarmPool.restart`
replaces it (idempotently per generation) so the campaign runner can
retry the affected points on a fresh fleet instead of hanging or
poisoning later sweeps.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback as _traceback
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

#: Modules imported into the forkserver parent before the first fork, so
#: every forked worker starts warm (see repro/campaign/_preload.py).
PRELOAD_MODULES = ("repro.campaign._preload",)


def pick_start_method() -> str:
    """``forkserver`` where the platform offers it, else ``spawn``.

    ``fork`` is deliberately not used even where available: the pool is
    shared with the threaded ``repro serve`` daemon, and forking a
    threaded parent is unsafe.  ``forkserver`` forks from a clean,
    single-threaded server process instead.
    """
    methods = multiprocessing.get_all_start_methods()
    return "forkserver" if "forkserver" in methods else "spawn"


def warm_worker() -> None:
    """Pool initializer: runs once per worker process, imports the world."""
    import repro.campaign._preload  # noqa: F401


def error_record(exc: BaseException) -> Dict[str, Any]:
    """The structured per-point error payload (type, message, traceback)."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(_traceback.format_exception(
            type(exc), exc, exc.__traceback__)),
    }


def split_common_base(
    points: Sequence[Mapping[str, Any]],
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Factor the fields identical across every point into a shared base.

    Returns ``(base, overrides)`` where ``{**base, **overrides[i]}``
    reconstructs ``points[i]`` exactly.  For a typical sweep (two or
    three varying axes over a ~30-field resolved config) this shrinks
    the per-task payload by an order of magnitude — the base crosses the
    pipe once per *task*, not once per point.
    """
    from repro.campaign.spec import canonical_json

    if not points:
        return {}, []
    base: Dict[str, Any] = {}
    for key, value in points[0].items():
        token = canonical_json(value)
        if all(key in p and canonical_json(p[key]) == token
               for p in points[1:]):
            base[key] = value
    overrides = [{k: v for k, v in p.items() if k not in base}
                 for p in points]
    return base, overrides


def run_batch(
    executor: Callable[[Mapping[str, Any]], Dict[str, Any]],
    base: Mapping[str, Any],
    items: Sequence[Tuple[int, Mapping[str, Any]]],
) -> List[Tuple[int, Dict[str, Any]]]:
    """Worker entry point: execute a chunk of ``(index, overrides)`` points.

    Reconstructs each point from the broadcast base, runs it, and
    returns ``(index, outcome)`` pairs.  Per-point simulation failures
    become structured error outcomes; only process death escapes (and is
    handled by the caller's broken-pool recovery).
    """
    out: List[Tuple[int, Dict[str, Any]]] = []
    for index, overrides in items:
        point = dict(base)
        point.update(overrides)
        try:
            out.append((index, {"ok": True, "result": executor(point)}))
        except (Exception, SystemExit) as exc:  # noqa: BLE001 - error record
            out.append((index, {"ok": False, "error": error_record(exc)}))
    return out


def _worker_ident(settle_s: float) -> int:
    """Warm-up probe: settle briefly so probes spread across workers."""
    if settle_s > 0:
        time.sleep(settle_s)
    return os.getpid()


def plan_batches(pending: Sequence[int], workers: int,
                 batch_size: int = 0) -> List[List[int]]:
    """Chunk pending point indices into per-task batches.

    ``batch_size=0`` (auto) targets about two tasks per worker: large
    enough to amortise dispatch, small enough that a straggler batch
    cannot idle the rest of the fleet.
    """
    if not pending:
        return []
    if batch_size <= 0:
        batch_size = max(1, -(-len(pending) // (max(workers, 1) * 2)))
    return [list(pending[i:i + batch_size])
            for i in range(0, len(pending), batch_size)]


class WarmPool:
    """A persistent process pool whose workers pre-import the simulator.

    The underlying executor is created lazily on first submit and
    survives until :meth:`shutdown` — submitting work from several
    sweeps (or several server threads) reuses the same warm workers.
    ``restart`` replaces a broken executor without losing the pool
    object, so holders of a shared pool never see a stale handle.
    """

    def __init__(self, workers: int,
                 start_method: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.start_method = start_method or pick_start_method()
        self.generation = 0
        self.restarts = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        self._shutdown = False
        self._lock = threading.RLock()

    # -- lifecycle ---------------------------------------------------------------

    def _make_executor(self) -> ProcessPoolExecutor:
        context = multiprocessing.get_context(self.start_method)
        if self.start_method == "forkserver":
            # Must be set before the fork server launches; a context is
            # cheap and per-pool, so this never fights other users.
            context.set_forkserver_preload(list(PRELOAD_MODULES))
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=context,
            initializer=warm_worker)

    @property
    def alive(self) -> bool:
        return not self._shutdown

    @property
    def started(self) -> bool:
        """Whether worker processes currently exist (lazily created)."""
        return self._executor is not None

    def submit(self, fn: Callable, *args: Any) -> Future:
        with self._lock:
            if self._shutdown:
                raise RuntimeError("pool has been shut down")
            if self._executor is None:
                self._executor = self._make_executor()
            return self._executor.submit(fn, *args)

    def restart(self, generation: Optional[int] = None) -> bool:
        """Replace the executor after a worker crash.

        Idempotent per generation: when one crash breaks many in-flight
        futures, only the first ``restart(gen)`` call rebuilds the
        executor; latecomers carrying the stale generation are no-ops.
        Returns whether a restart actually happened.
        """
        with self._lock:
            if self._shutdown:
                return False
            if generation is not None and generation != self.generation:
                return False
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self.generation += 1
            self.restarts += 1
            return True

    def resize(self, workers: int) -> None:
        """Grow the fleet (never shrinks; a live sweep keeps its workers)."""
        with self._lock:
            if workers <= self.workers or self._shutdown:
                return
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=False)
                self._executor = None
                self.generation += 1
            self.workers = workers

    def shutdown(self, wait: bool = False) -> None:
        with self._lock:
            self._shutdown = True
            if self._executor is not None:
                self._executor.shutdown(wait=wait, cancel_futures=True)
                self._executor = None

    # -- warm-up -----------------------------------------------------------------

    def warm_up(self, settle_s: float = 0.05) -> Set[int]:
        """Force worker creation + imports; returns the worker PIDs seen.

        Submits one settling probe per worker so the fleet is fully
        imported before real traffic arrives (the ``repro serve`` start
        path, and the perf harness' steady-state measurement).
        """
        futures = [self.submit(_worker_ident, settle_s)
                   for _ in range(self.workers)]
        return {future.result() for future in futures}

    def stats(self) -> Dict[str, Any]:
        return {
            "workers": self.workers,
            "start_method": self.start_method,
            "started": self.started,
            "generation": self.generation,
            "restarts": self.restarts,
        }


# -- the process-wide shared fleet -----------------------------------------------

_shared: Optional[WarmPool] = None
_shared_lock = threading.Lock()


def get_shared_pool(workers: int,
                    start_method: Optional[str] = None) -> WarmPool:
    """The process-wide warm fleet, grown to at least ``workers`` workers.

    Sweeps within one process (CLI invocations of several specs, every
    request the serve daemon handles) share these workers, which is what
    amortises worker start-up to zero in steady state.
    """
    global _shared
    with _shared_lock:
        if _shared is None or not _shared.alive:
            _shared = WarmPool(workers, start_method)
        elif _shared.workers < workers:
            _shared.resize(workers)
        return _shared


def shutdown_shared_pool(wait: bool = False) -> None:
    """Tear down the shared fleet (KeyboardInterrupt, server exit, tests)."""
    global _shared
    with _shared_lock:
        if _shared is not None:
            _shared.shutdown(wait=wait)
            _shared = None


def shared_pool_stats() -> Optional[Dict[str, Any]]:
    with _shared_lock:
        return _shared.stats() if _shared is not None else None

"""Worker warm-up: import the whole simulator once per worker process.

Imported by the forkserver parent (via ``set_forkserver_preload``) and by
every pool worker's initializer.  After this module loads, a worker can
execute :func:`repro.campaign.runner.run_point` without paying any
import or argparse-construction cost — the expensive first-use work
(package import, CLI parser defaults) happens exactly once per worker
*lifetime*, not once per sweep or once per point.
"""

import repro  # noqa: F401
import repro.cli  # noqa: F401
from repro.campaign.runner import default_fields

# Build and memoise the CLI-default field table: the first normalize_point
# call in a cold process otherwise constructs a full argument parser.
default_fields()

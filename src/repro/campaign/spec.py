"""Declarative sweep specifications: grid / zip / list grammar.

A :class:`SweepSpec` names the design space of a campaign — the same
"many cheap analytical runs" usage model behind the paper's Table V
bandwidth grid and Fig. 9(b) scaling curves — as data, not hand-rolled
loops:

- ``base``: field values shared by every point;
- ``grid``: per-field value lists, expanded as a cartesian product in
  insertion order (the *last* axis varies fastest);
- ``zip_axes``: equal-length value lists that vary *together* (e.g. a
  topology string with its matching bandwidth list); the zipped rows
  form the outermost loop around the grid;
- ``points``: an explicit list of field dicts, for irregular spaces the
  grid/zip grammar cannot express (mutually exclusive with grid/zip).

Expansion is deterministic: the same spec always yields the same ordered
list of fully-resolved point dicts, which is what lets the campaign
runner merge parallel results back in spec order and lets the run cache
key points by their canonical JSON.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


class SweepSpecError(ValueError):
    """A malformed sweep specification."""


def canonical_json(value: Any) -> str:
    """Canonical JSON form: sorted keys, compact separators.

    Two points are the same configuration exactly when their canonical
    JSON strings match — the form the run cache hashes and the
    determinism tests compare byte-for-byte.
    """
    try:
        return json.dumps(value, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise SweepSpecError(
            f"sweep values must be JSON-serializable: {exc}") from exc


def _check_axes(kind: str, axes: Mapping[str, Sequence[Any]]) -> None:
    for field, values in axes.items():
        if not isinstance(field, str) or not field:
            raise SweepSpecError(f"{kind} field names must be non-empty "
                                 f"strings, got {field!r}")
        if isinstance(values, (str, bytes)) or not isinstance(
                values, (list, tuple)):
            raise SweepSpecError(
                f"{kind} axis {field!r} must be a list/tuple of values, "
                f"got {type(values).__name__}")
        if not values:
            raise SweepSpecError(f"{kind} axis {field!r} is empty")


class SweepSpec:
    """One campaign's design space over run-config fields."""

    def __init__(
        self,
        base: Optional[Mapping[str, Any]] = None,
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
        zip_axes: Optional[Mapping[str, Sequence[Any]]] = None,
        points: Optional[Iterable[Mapping[str, Any]]] = None,
    ) -> None:
        self.base: Dict[str, Any] = dict(base or {})
        # Validate the raw axes before list() coercion: a string value
        # would otherwise silently explode into its characters.
        _check_axes("grid", grid or {})
        _check_axes("zip", zip_axes or {})
        self.grid: Dict[str, List[Any]] = {
            k: list(v) for k, v in (grid or {}).items()}
        self.zip_axes: Dict[str, List[Any]] = {
            k: list(v) for k, v in (zip_axes or {}).items()}
        self.points: List[Dict[str, Any]] = [dict(p) for p in (points or [])]
        if self.points and (self.grid or self.zip_axes):
            raise SweepSpecError(
                "explicit points and grid/zip axes are mutually exclusive; "
                "fold the axes into the point list or drop the points")
        overlap = set(self.grid) & set(self.zip_axes)
        if overlap:
            raise SweepSpecError(
                f"fields appear in both grid and zip: {sorted(overlap)}")
        lengths = {len(v) for v in self.zip_axes.values()}
        if len(lengths) > 1:
            raise SweepSpecError(
                "zip axes must all have the same length, got "
                + ", ".join(f"{k}={len(v)}"
                            for k, v in sorted(self.zip_axes.items())))

    # -- expansion ---------------------------------------------------------------

    def __len__(self) -> int:
        if self.points:
            return len(self.points)
        n = next(iter(len(v) for v in self.zip_axes.values()), 1)
        for values in self.grid.values():
            n *= len(values)
        return n

    def expand(self) -> List[Dict[str, Any]]:
        """The ordered list of fully-resolved point dicts."""
        if self.points:
            return [{**self.base, **p} for p in self.points]
        rows: List[Dict[str, Any]] = [{}]
        if self.zip_axes:
            length = len(next(iter(self.zip_axes.values())))
            rows = [
                {field: values[i] for field, values in self.zip_axes.items()}
                for i in range(length)
            ]
        expanded = rows
        for field, values in self.grid.items():
            expanded = [
                {**point, field: value}
                for point in expanded
                for value in values
            ]
        return [{**self.base, **p} for p in expanded]

    def varying_fields(self) -> List[str]:
        """Fields whose value differs between at least two points."""
        points = self.expand()
        fields: List[str] = []
        seen: set = set()
        for point in points:
            for field in point:
                if field not in seen:
                    seen.add(field)
                    fields.append(field)
        varying = []
        for field in fields:
            values = {canonical_json(p.get(field)) for p in points}
            if len(values) > 1:
                varying.append(field)
        return varying

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"base": dict(self.base)}
        if self.grid:
            doc["grid"] = {k: list(v) for k, v in self.grid.items()}
        if self.zip_axes:
            doc["zip"] = {k: list(v) for k, v in self.zip_axes.items()}
        if self.points:
            doc["points"] = [dict(p) for p in self.points]
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "SweepSpec":
        return cls(base=doc.get("base"), grid=doc.get("grid"),
                   zip_axes=doc.get("zip"), points=doc.get("points"))

    # -- CLI text grammar --------------------------------------------------------

    @staticmethod
    def parse_axis(text: str) -> Tuple[str, List[str]]:
        """Parse one ``field=v1|v2|v3`` axis from the CLI.

        ``|`` separates values (commas stay available for in-value lists
        like ``--grid "bandwidths=100,25|600"``).  Values are returned as
        strings; the executor applies the same type conversions as the
        ``run`` subcommand's flags.
        """
        field, sep, values_text = text.partition("=")
        field = field.strip().replace("-", "_")
        if not sep or not field:
            raise SweepSpecError(
                f"axis {text!r} is not of the form field=v1|v2|...")
        values = [v.strip() for v in values_text.split("|")]
        if not values or any(v == "" for v in values):
            raise SweepSpecError(f"axis {text!r} has an empty value")
        return field, values

    @classmethod
    def from_cli(
        cls,
        base: Mapping[str, Any],
        grid_texts: Sequence[str] = (),
        zip_texts: Sequence[str] = (),
    ) -> "SweepSpec":
        """Build a spec from repeated ``--grid`` / ``--zip`` flag values."""
        grid: Dict[str, List[str]] = {}
        for text in grid_texts:
            field, values = cls.parse_axis(text)
            if field in grid:
                raise SweepSpecError(f"duplicate grid axis {field!r}")
            grid[field] = values
        zip_axes: Dict[str, List[str]] = {}
        for text in zip_texts:
            field, values = cls.parse_axis(text)
            if field in zip_axes:
                raise SweepSpecError(f"duplicate zip axis {field!r}")
            zip_axes[field] = values
        return cls(base=base, grid=grid, zip_axes=zip_axes)

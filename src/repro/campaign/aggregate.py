"""Campaign aggregation: per-point tables and per-sweep summary stats.

Operates on the merged campaign document
(:meth:`repro.campaign.runner.CampaignResult.to_dict`), producing the
outputs a design-space exploration actually consumes: a per-point table
over the *varying* fields (CSV or aligned text), and summary statistics
of the headline metrics via :mod:`repro.stats.summary`.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Tuple, Union

from repro.campaign.spec import canonical_json
from repro.stats.report import format_table
from repro.stats.summary import summary_stats


def varying_fields(doc: Mapping[str, Any]) -> List[str]:
    """Config fields that differ between points, in first-seen order."""
    points = doc["points"]
    fields: List[str] = []
    for point in points:
        for name in point["config"]:
            if name not in fields:
                fields.append(name)
    return [
        name
        for name in fields
        if len({canonical_json(p["config"].get(name)) for p in points}) > 1
    ]


def campaign_rows(
    doc: Mapping[str, Any],
) -> Tuple[List[str], List[List[str]]]:
    """Header + rows of the per-point aggregate table.

    Columns: the varying config fields, then the headline result
    metrics.  Failed points carry their error type in the status column
    and empty metric cells.
    """
    fields = varying_fields(doc)
    headers = fields + ["total_time_ms", "nodes", "events", "status"]
    rows: List[List[str]] = []
    for point in doc["points"]:
        row = [_cell(point["config"].get(name)) for name in fields]
        result = point.get("result")
        if result is not None:
            row.extend([
                f"{result['total_time_ns'] * 1e-6:.3f}",
                str(result["nodes_executed"]),
                str(result["events_processed"]),
                "cached" if point.get("cached") else "ok",
            ])
        else:
            error = point.get("error") or {}
            row.extend(["", "", "", f"error:{error.get('type', '?')}"])
        rows.append(row)
    return headers, rows


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return format(value, "g")
    if isinstance(value, (list, tuple)):
        return ";".join(str(v) for v in value)
    return "" if value is None else str(value)


def campaign_table(doc: Mapping[str, Any]) -> str:
    """The per-point table as aligned text (CLI output)."""
    headers, rows = campaign_rows(doc)
    return format_table(headers, rows)


def campaign_to_csv(doc: Mapping[str, Any]) -> str:
    """The per-point table as CSV text."""
    headers, rows = campaign_rows(doc)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()


def campaign_summary(doc: Mapping[str, Any]) -> Dict[str, Any]:
    """Per-sweep summary statistics of the headline metrics.

    ``total_time_ms`` / ``events_processed`` / ``nodes_executed`` are
    summarised over the *successful* points; ``errors`` counts the
    failed ones.
    """
    ok = [p["result"] for p in doc["points"] if p.get("result") is not None]
    return {
        "points": len(doc["points"]),
        "errors": sum(1 for p in doc["points"] if p.get("error") is not None),
        "cached": sum(1 for p in doc["points"] if p.get("cached")),
        "total_time_ms": summary_stats(
            r["total_time_ns"] * 1e-6 for r in ok),
        "events_processed": summary_stats(
            r["events_processed"] for r in ok),
        "nodes_executed": summary_stats(
            r["nodes_executed"] for r in ok),
    }


def dump_campaign_json(doc: Mapping[str, Any],
                       path: Union[str, Path], indent: int = 2) -> None:
    """Write the merged campaign document (plus its summary) to a file."""
    out = dict(doc)
    out["summary"] = campaign_summary(doc)
    Path(path).write_text(json.dumps(out, indent=indent, sort_keys=True)
                          + "\n")


def metric_series(
    doc: Mapping[str, Any], field: str, metric: str = "total_time_ms",
) -> List[Tuple[Any, float]]:
    """``(field value, metric)`` pairs over the successful points.

    Convenience for plotting one sweep axis against a result metric;
    ``metric`` may be ``total_time_ms`` or any top-level numeric key of
    the result payload (``total_time_ns``, ``events_processed``, ...).
    """
    series: List[Tuple[Any, float]] = []
    for point in doc["points"]:
        result = point.get("result")
        if result is None:
            continue
        if metric == "total_time_ms":
            value = result["total_time_ns"] * 1e-6
        else:
            value = result[metric]
        series.append((point["config"].get(field), value))
    return series


def results_by_config(
    doc: Mapping[str, Any], *fields: str,
) -> Dict[Tuple[Any, ...], Dict[str, Any]]:
    """Index successful result payloads by a tuple of config fields."""
    out: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    for point in doc["points"]:
        if point.get("result") is None:
            continue
        key = tuple(point["config"].get(name) for name in fields)
        out[key] = point["result"]
    return out

"""Content-addressed on-disk cache of completed sweep points.

A cache entry is keyed by ``sha256(canonical config JSON + code
fingerprint)``:

- the *canonical config JSON* (:func:`repro.campaign.spec.canonical_json`
  of the fully-resolved point) changes whenever any field of the run
  configuration changes, so two different configurations can never share
  an entry;
- the *code fingerprint* hashes the source of every module in the
  ``repro`` package — including every subpackage that prices results,
  such as :mod:`repro.frontend`'s planner/costing code — so editing the
  simulator invalidates every cached result without manual versioning.

Entries are one JSON file each under ``<dir>/<key[:2]>/<key>.json`` and
are written atomically (tmp + rename).  A corrupted or mismatched entry
is treated as a miss — the point is re-simulated and the entry
overwritten — so a half-written or hand-edited cache can never poison a
campaign.  The cache is safe to share across threads (the serve daemon
uses one instance as its cross-client dedup store) and across processes
(atomic per-pid/per-thread tmp names).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.campaign.spec import canonical_json

CACHE_SCHEMA_VERSION = 1

_fingerprint_cache: Optional[str] = None


def fingerprint_sources(package_root: Optional[Path] = None) -> List[Path]:
    """Every source file that participates in the code fingerprint.

    All ``*.py`` files under the ``repro`` package root, recursively —
    the flat core, and every subpackage (``frontend``, ``validate``,
    ``campaign``, …).  Exposed separately so tests can assert coverage
    (a subpackage silently missing from the fingerprint would serve
    stale cached results after its code changes).
    """
    if package_root is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
    return sorted(Path(package_root).rglob("*.py"))


def code_fingerprint(package_root: Optional[Path] = None) -> str:
    """Hash of every ``repro`` source file's contents (hex digest).

    Computed once per process for the installed package; deliberately
    content-based (not mtime-based) so re-checkouts and touched-but-
    unchanged files keep their cache warm while any real code change —
    anywhere in the package, frontend planner included — invalidates it.
    ``package_root`` overrides the hashed tree (uncached; regression
    tests fingerprint modified copies of the package).
    """
    global _fingerprint_cache
    if package_root is None and _fingerprint_cache is not None:
        return _fingerprint_cache
    if package_root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    else:
        root = Path(package_root)
    digest = hashlib.sha256()
    for path in fingerprint_sources(root):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    if package_root is None:
        _fingerprint_cache = digest.hexdigest()
        return _fingerprint_cache
    return digest.hexdigest()


class RunCache:
    """Content-addressed store of ``result_to_dict``-style payloads."""

    def __init__(self, cache_dir: Union[str, Path],
                 fingerprint: Optional[str] = None) -> None:
        self.cache_dir = Path(cache_dir)
        self.fingerprint = (code_fingerprint() if fingerprint is None
                            else fingerprint)
        self.hits = 0
        self.misses = 0
        self.corrupted = 0
        self._lock = threading.Lock()

    def key(self, point: Mapping[str, Any]) -> str:
        payload = canonical_json(dict(point)) + "\n" + self.fingerprint
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / (key + ".json")

    def _count(self, hit: bool = False, miss: bool = False,
               corrupt: bool = False) -> None:
        with self._lock:
            self.hits += hit
            self.misses += miss
            self.corrupted += corrupt

    def get(self, point: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
        """The cached result payload for ``point``, or None on a miss.

        Counts the lookup: a readable, key-matching entry is a hit;
        everything else (absent, unparsable, wrong key or schema) is a
        miss, with corruption additionally tallied in ``corrupted``.
        """
        key = self.key(point)
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            self._count(miss=True)
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._count(miss=True, corrupt=True)
            return None
        if (not isinstance(entry, dict)
                or entry.get("schema_version") != CACHE_SCHEMA_VERSION
                or entry.get("key") != key
                or "result" not in entry):
            self._count(miss=True, corrupt=True)
            return None
        self._count(hit=True)
        return entry["result"]

    def put(self, point: Mapping[str, Any], result: Dict[str, Any]) -> str:
        """Store a result payload; returns the entry key."""
        key = self.key(point)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "key": key,
            "fingerprint": self.fingerprint,
            "config": dict(point),
            "result": result,
        }
        tmp = path.with_suffix(
            ".tmp.%d.%d" % (os.getpid(), threading.get_ident()))
        tmp.write_text(json.dumps(entry, sort_keys=True))
        os.replace(tmp, path)
        return key

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "corrupted": self.corrupted}

"""Workload layer: DNN models, parallelization strategies, ET generation.

The workload layer describes target models and parallelization strategies
and lowers them to per-NPU execution traces (paper Fig. 1b).  Canned model
specs reproduce the paper's Table III workloads (DLRM, GPT-3,
Transformer-1T) and the Sec. V-B MoE-1T model.

Because collectives over whole topology dimensions are symmetric across
group members, generators emit traces only for *representative* NPUs (one
per distinct behaviour — e.g. one per pipeline stage); the simulator times
collectives from group sizes, so a representative trace prices the whole
system.  This mirrors how the analytical ASTRA-sim backend scales to
thousands of NPUs.
"""

from repro.workload.models import (
    DLRMSpec,
    MoESpec,
    TransformerSpec,
    dlrm_paper,
    gpt3_175b,
    moe_1t,
    transformer_1t,
)
from repro.workload.lint import lint_op_graph, lint_traces
from repro.workload.parallelism import ParallelismSpec, assign_dims
from repro.workload.generators import (
    generate_data_parallel,
    generate_dlrm,
    generate_fsdp,
    generate_megatron_hybrid,
    generate_moe,
    generate_pipeline_parallel,
    generate_single_collective,
)

__all__ = [
    "DLRMSpec",
    "MoESpec",
    "ParallelismSpec",
    "TransformerSpec",
    "assign_dims",
    "dlrm_paper",
    "generate_data_parallel",
    "generate_dlrm",
    "generate_fsdp",
    "generate_megatron_hybrid",
    "generate_moe",
    "generate_pipeline_parallel",
    "generate_single_collective",
    "gpt3_175b",
    "lint_op_graph",
    "lint_traces",
    "moe_1t",
    "transformer_1t",
]

"""Parallelization strategies and their mapping onto topology dimensions.

A :class:`ParallelismSpec` states the degrees (MP x DP x PP x EP);
:func:`assign_dims` maps each degree onto a *contiguous run of topology
dimensions*, innermost first — MP on the fastest dims, then PP, then DP —
matching how real systems place communicators (tensor parallelism on
NVLink, data parallelism over the NIC; paper Sec. V-A: "MP and DP span
over some (and not every) dimensions and utilize only those BW").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.network.topology import MultiDimTopology


@dataclass(frozen=True)
class ParallelismSpec:
    """Degrees of each parallelism axis.

    The product of all degrees must equal the system's NPU count when
    mapped with :func:`assign_dims`.
    """

    mp: int = 1
    dp: int = 1
    pp: int = 1
    ep: int = 1

    def __post_init__(self) -> None:
        for name in ("mp", "dp", "pp", "ep"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} degree must be >= 1, got {getattr(self, name)}")

    @property
    def total(self) -> int:
        return self.mp * self.dp * self.pp * self.ep


class DimAssignmentError(ValueError):
    """Raised when degrees cannot be aligned to topology dimensions."""


def assign_dims(
    topology: MultiDimTopology, spec: ParallelismSpec
) -> Dict[str, Tuple[int, ...]]:
    """Map parallelism axes to contiguous dimension runs, innermost first.

    Order of placement: MP (innermost), then EP, then PP, then DP
    (outermost).  Each axis's degree must equal the product of the
    dimension sizes it is assigned; degrees of 1 get no dimensions.

    Returns a dict ``{"mp": dims, "ep": dims, "pp": dims, "dp": dims}``.

    Raises :class:`DimAssignmentError` when a degree does not align with
    dimension boundaries (e.g. MP=4 on a topology whose first dim is 8).
    """
    if spec.total != topology.num_npus:
        raise DimAssignmentError(
            f"parallelism degrees multiply to {spec.total} but topology has "
            f"{topology.num_npus} NPUs"
        )
    sizes = topology.shape
    assignment: Dict[str, Tuple[int, ...]] = {}
    next_dim = 0
    for axis, degree in (("mp", spec.mp), ("ep", spec.ep),
                         ("pp", spec.pp), ("dp", spec.dp)):
        if degree == 1:
            assignment[axis] = ()
            continue
        dims: List[int] = []
        product = 1
        while product < degree:
            if next_dim >= len(sizes):
                raise DimAssignmentError(
                    f"ran out of dimensions assigning {axis}={degree} on "
                    f"shape {sizes}"
                )
            dims.append(next_dim)
            product *= sizes[next_dim]
            next_dim += 1
        if product != degree:
            raise DimAssignmentError(
                f"{axis}={degree} does not align with dimension boundaries of "
                f"shape {sizes} (got product {product}); choose degrees that "
                "are products of consecutive dimension sizes"
            )
        assignment[axis] = tuple(dims)
    return assignment


def fit_hybrid(topology: MultiDimTopology, mp: int) -> ParallelismSpec:
    """Convenience: hybrid MP x DP filling the whole system.

    DP takes whatever NPUs remain after MP; raises if MP does not divide
    the system size.
    """
    if topology.num_npus % mp != 0:
        raise DimAssignmentError(
            f"MP={mp} does not divide system size {topology.num_npus}"
        )
    return ParallelismSpec(mp=mp, dp=topology.num_npus // mp)

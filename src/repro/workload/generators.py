"""Execution-trace generators for the paper's workloads.

Each generator lowers a model spec + parallelization strategy into
per-NPU :class:`~repro.trace.graph.ExecutionTrace` DAGs.  Traces are
emitted for *representative* NPUs only (see :mod:`repro.workload`): one
trace for fully-symmetric strategies, one per pipeline stage for PP.

The dependency structure is what encodes the strategy (paper Sec. IV-A):
e.g. a weight-gradient All-Reduce depends only on its own layer's backward
compute, which is what lets it overlap with earlier layers' backward —
the compute/communication overlap the case studies measure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.topology import MultiDimTopology
from repro.trace.graph import ExecutionTrace
from repro.trace.node import CollectiveType, ETNode, NodeType, TensorLocation
from repro.workload.models import DLRMSpec, MoESpec, TransformerSpec
from repro.workload.parallelism import ParallelismSpec, assign_dims

VIA_FABRIC = "fabric"  # attrs["via"] value routing a collective through the memory fabric


class TraceBuilder:
    """Incremental ET construction with automatic id assignment."""

    def __init__(self, npu_id: int) -> None:
        self.npu_id = npu_id
        self._nodes: List[ETNode] = []

    def _add(self, node: ETNode) -> int:
        self._nodes.append(node)
        return node.node_id

    def _next_id(self) -> int:
        return len(self._nodes)

    def compute(self, name: str, flops: int, tensor_bytes: int = 0,
                deps: Sequence[int] = ()) -> int:
        return self._add(ETNode(
            node_id=self._next_id(), node_type=NodeType.COMPUTE, name=name,
            deps=tuple(deps), flops=max(1, flops), tensor_bytes=tensor_bytes,
        ))

    def collective(self, name: str, ctype: CollectiveType, tensor_bytes: int,
                   dims: Optional[Sequence[int]], deps: Sequence[int] = (),
                   via: Optional[str] = None,
                   involved: Optional[Sequence[int]] = None) -> int:
        attrs = {"via": via} if via else {}
        return self._add(ETNode(
            node_id=self._next_id(), node_type=NodeType.COMM_COLLECTIVE,
            name=name, deps=tuple(deps), tensor_bytes=tensor_bytes,
            collective=ctype,
            comm_dims=tuple(dims) if dims is not None else None,
            involved_npus=tuple(involved) if involved is not None else None,
            attrs=attrs,
        ))

    def memory(self, name: str, tensor_bytes: int, *, store: bool = False,
               remote: bool = False, deps: Sequence[int] = (),
               via: Optional[str] = None) -> int:
        attrs = {"via": via} if via else {}
        return self._add(ETNode(
            node_id=self._next_id(),
            node_type=NodeType.MEMORY_STORE if store else NodeType.MEMORY_LOAD,
            name=name, deps=tuple(deps), tensor_bytes=tensor_bytes,
            location=TensorLocation.REMOTE if remote else TensorLocation.LOCAL,
            attrs=attrs,
        ))

    def send(self, name: str, peer: int, tensor_bytes: int, tag: int,
             deps: Sequence[int] = ()) -> int:
        return self._add(ETNode(
            node_id=self._next_id(), node_type=NodeType.COMM_SEND, name=name,
            deps=tuple(deps), tensor_bytes=tensor_bytes, peer=peer, tag=tag,
        ))

    def recv(self, name: str, peer: int, tensor_bytes: int, tag: int,
             deps: Sequence[int] = ()) -> int:
        return self._add(ETNode(
            node_id=self._next_id(), node_type=NodeType.COMM_RECV, name=name,
            deps=tuple(deps), tensor_bytes=tensor_bytes, peer=peer, tag=tag,
        ))

    def build(self) -> ExecutionTrace:
        return ExecutionTrace(self.npu_id, self._nodes)


# -- microbenchmark ------------------------------------------------------------------


def generate_single_collective(
    topology: MultiDimTopology,
    collective: CollectiveType,
    payload_bytes: int,
    dims: Optional[Sequence[int]] = None,
    count: int = 1,
) -> Dict[int, ExecutionTrace]:
    """A bare collective (optionally repeated back-to-back).

    This is the paper's "single 1GB All-Reduce" microbenchmark workload.
    """
    builder = TraceBuilder(0)
    prev: Tuple[int, ...] = ()
    for i in range(count):
        node = builder.collective(
            f"{collective.value}[{i}]", collective, payload_bytes, dims, deps=prev
        )
        prev = (node,)
    return {0: builder.build()}


# -- data parallel ---------------------------------------------------------------------


def generate_data_parallel(
    model: TransformerSpec,
    topology: MultiDimTopology,
    iterations: int = 1,
) -> Dict[int, ExecutionTrace]:
    """Pure data parallelism: replicate the model, All-Reduce gradients.

    Per-layer gradient All-Reduces depend only on that layer's backward
    compute, so they overlap the rest of the backward pass.
    """
    builder = TraceBuilder(0)
    all_dims = tuple(range(topology.num_dims))
    prev_iter_end: Tuple[int, ...] = ()
    for it in range(iterations):
        fwd_prev: Tuple[int, ...] = prev_iter_end
        fwd_ids = []
        for layer in range(model.num_layers):
            fid = builder.compute(
                f"it{it}.fwd.L{layer}", model.fwd_flops_per_layer(),
                model.activation_bytes(), deps=fwd_prev,
            )
            fwd_ids.append(fid)
            fwd_prev = (fid,)
        bwd_prev: Tuple[int, ...] = fwd_prev
        grad_ars = []
        for layer in reversed(range(model.num_layers)):
            bid = builder.compute(
                f"it{it}.bwd.L{layer}", model.bwd_flops_per_layer(),
                model.activation_bytes(), deps=bwd_prev,
            )
            bwd_prev = (bid,)
            grad_ars.append(builder.collective(
                f"it{it}.gradAR.L{layer}", CollectiveType.ALL_REDUCE,
                model.layer_grad_bytes(), all_dims, deps=(bid,),
            ))
        step = builder.compute(
            f"it{it}.optimizer", model.total_params,
            deps=tuple(grad_ars) + bwd_prev,
        )
        prev_iter_end = (step,)
    return {0: builder.build()}


# -- hybrid (Megatron) MP x DP -----------------------------------------------------------


def generate_megatron_hybrid(
    model: TransformerSpec,
    topology: MultiDimTopology,
    spec: ParallelismSpec,
    iterations: int = 1,
) -> Dict[int, ExecutionTrace]:
    """Megatron-style hybrid: tensor parallel within MP dims, DP outside.

    Forward: two compute+All-Reduce pairs per layer (attention, MLP) on the
    MP dims, activation-sized.  Backward mirrors forward, and each layer's
    weight-gradient All-Reduce (params/MP-sized) runs on the DP dims,
    overlapping deeper layers' backward.

    When the degrees do not align with dimension boundaries (e.g. MP=16
    on a 512-NPU wafer switch), communicators fall back to *flat groups*
    over consecutive/strided NPU ids (``involved_npus``), and the
    simulator derives the effective per-dimension shape from the member
    coordinates — this is how sub-dimension MP/DP groups share a wafer's
    full on-chip bandwidth (paper Sec. V-A).
    """
    from repro.workload.parallelism import DimAssignmentError

    mp_group = dp_group = None
    try:
        assignment = assign_dims(topology, spec)
        mp_dims, dp_dims = assignment["mp"], assignment["dp"]
    except DimAssignmentError:
        if spec.mp * spec.dp != topology.num_npus:
            raise
        mp_dims = dp_dims = None
        if spec.mp > 1:
            mp_group = tuple(range(spec.mp))
        if spec.dp > 1:
            dp_group = tuple(range(0, spec.mp * spec.dp, spec.mp))
    builder = TraceBuilder(0)
    act = model.activation_bytes()
    half_fwd = model.fwd_flops_per_layer() // (2 * spec.mp)
    half_bwd = model.bwd_flops_per_layer() // (2 * spec.mp)
    grad_bytes = model.layer_grad_bytes() // spec.mp

    has_mp = bool(mp_dims) or mp_group is not None
    has_dp = bool(dp_dims) or dp_group is not None
    prev_end: Tuple[int, ...] = ()
    for it in range(iterations):
        prev: Tuple[int, ...] = prev_end
        for layer in range(model.num_layers):
            for half in ("attn", "mlp"):
                cid = builder.compute(
                    f"it{it}.fwd.L{layer}.{half}", half_fwd, act, deps=prev)
                prev = (cid,)
                if has_mp:
                    ar = builder.collective(
                        f"it{it}.fwdAR.L{layer}.{half}",
                        CollectiveType.ALL_REDUCE, act, mp_dims, deps=prev,
                        involved=mp_group)
                    prev = (ar,)
        grad_ars: List[int] = []
        for layer in reversed(range(model.num_layers)):
            layer_bwd: List[int] = []
            for half in ("mlp", "attn"):
                cid = builder.compute(
                    f"it{it}.bwd.L{layer}.{half}", half_bwd, act, deps=prev)
                prev = (cid,)
                layer_bwd.append(cid)
                if has_mp:
                    ar = builder.collective(
                        f"it{it}.bwdAR.L{layer}.{half}",
                        CollectiveType.ALL_REDUCE, act, mp_dims, deps=prev,
                        involved=mp_group)
                    prev = (ar,)
            if has_dp:
                grad_ars.append(builder.collective(
                    f"it{it}.gradAR.L{layer}", CollectiveType.ALL_REDUCE,
                    grad_bytes, dp_dims, deps=tuple(layer_bwd),
                    involved=dp_group))
        step = builder.compute(
            f"it{it}.optimizer", max(1, model.total_params // spec.mp),
            deps=tuple(grad_ars) + prev)
        prev_end = (step,)
    return {0: builder.build()}


# -- FSDP / ZeRO-3 ---------------------------------------------------------------------


def generate_fsdp(
    model: TransformerSpec,
    topology: MultiDimTopology,
    iterations: int = 1,
) -> Dict[int, ExecutionTrace]:
    """Fully-Sharded Data Parallelism (FSDP / ZeRO-3) over all dimensions.

    Every parameter is sharded across every NPU.  Per layer: All-Gather
    the layer's parameters (prefetched — each gather depends only on the
    previous gather, so it overlaps compute), run forward; the backward
    re-gathers, computes, and Reduce-Scatters the gradients.  This is one
    of the parallelization strategies the paper cites as motivating
    arbitrary-parallelism support (Sec. I: FSDP, ZeRO).
    """
    builder = TraceBuilder(0)
    all_dims = tuple(range(topology.num_dims))
    layer_params_bytes = model.params_per_layer * model.dtype_bytes
    prev_end: Tuple[int, ...] = ()
    for it in range(iterations):
        # Forward gathers prefetch along a chain.
        gather_chain: Tuple[int, ...] = prev_end
        fwd_gathers: List[int] = []
        for layer in range(model.num_layers):
            ag = builder.collective(
                f"it{it}.fwdAG.L{layer}", CollectiveType.ALL_GATHER,
                layer_params_bytes, all_dims, deps=gather_chain)
            fwd_gathers.append(ag)
            gather_chain = (ag,)
        prev: Tuple[int, ...] = prev_end
        for layer in range(model.num_layers):
            cid = builder.compute(
                f"it{it}.fwd.L{layer}", model.fwd_flops_per_layer(),
                model.activation_bytes(), deps=tuple(prev) + (fwd_gathers[layer],))
            prev = (cid,)
        # Backward: re-gather, compute, reduce-scatter grads.
        bwd_gathers: Dict[int, int] = {}
        gather_chain = (fwd_gathers[-1],)
        for layer in reversed(range(model.num_layers)):
            ag = builder.collective(
                f"it{it}.bwdAG.L{layer}", CollectiveType.ALL_GATHER,
                layer_params_bytes, all_dims, deps=gather_chain)
            bwd_gathers[layer] = ag
            gather_chain = (ag,)
        grad_rs: List[int] = []
        for layer in reversed(range(model.num_layers)):
            bid = builder.compute(
                f"it{it}.bwd.L{layer}", model.bwd_flops_per_layer(),
                model.activation_bytes(),
                deps=tuple(prev) + (bwd_gathers[layer],))
            prev = (bid,)
            grad_rs.append(builder.collective(
                f"it{it}.gradRS.L{layer}", CollectiveType.REDUCE_SCATTER,
                layer_params_bytes, all_dims, deps=(bid,)))
        step = builder.compute(
            f"it{it}.optimizer",
            max(1, model.total_params // topology.num_npus),
            deps=tuple(grad_rs) + prev)
        prev_end = (step,)
    return {0: builder.build()}


# -- pipeline parallelism (GPipe schedule) ------------------------------------------------


def _stage_op_sequence(schedule: str, num_stages: int, stage: int,
                       microbatches: int) -> List[Tuple[str, int]]:
    """Per-stage (kind, microbatch) issue order for a pipeline schedule.

    - ``gpipe``: all forwards, then all backwards in reverse microbatch
      order (synchronous flush).
    - ``1f1b``: PipeDream-flush — ``num_stages - 1 - stage`` warmup
      forwards, a steady phase alternating one forward and one backward,
      and a backward-only cooldown.  Same work, far smaller activation
      working set and bubbles that shrink with depth.
    """
    if schedule == "gpipe":
        return ([("f", mb) for mb in range(microbatches)]
                + [("b", mb) for mb in reversed(range(microbatches))])
    if schedule == "1f1b":
        warmup = min(microbatches, num_stages - 1 - stage)
        ops: List[Tuple[str, int]] = [("f", mb) for mb in range(warmup)]
        fwd, bwd = warmup, 0
        while fwd < microbatches:
            ops.append(("f", fwd))
            fwd += 1
            ops.append(("b", bwd))
            bwd += 1
        while bwd < microbatches:
            ops.append(("b", bwd))
            bwd += 1
        return ops
    raise ValueError(f"unknown pipeline schedule {schedule!r}; "
                     "expected 'gpipe' or '1f1b'")


def generate_pipeline_parallel(
    model: TransformerSpec,
    topology: MultiDimTopology,
    spec: ParallelismSpec,
    microbatches: int = 4,
    iterations: int = 1,
    schedule: str = "gpipe",
) -> Dict[int, ExecutionTrace]:
    """Pipeline parallelism: stages on the PP dims, DP outside, MP inside.

    Emits one trace per pipeline stage (the representative of each stage's
    DP/MP-symmetric group).  Stages exchange microbatch activations with
    point-to-point send/recv nodes; within a stage, tensor-parallel
    activation All-Reduces run on the MP dims (full 3-D parallelism);
    after all backwards, each stage All-Reduces its weight gradients
    across the DP dims.

    ``schedule`` selects the issue order per stage: ``"gpipe"`` (all
    forwards then all backwards) or ``"1f1b"`` (PipeDream-flush).
    """
    if microbatches < 1:
        raise ValueError(f"microbatches must be >= 1, got {microbatches}")
    _stage_op_sequence(schedule, 2, 0, 1)  # validate the schedule name
    assignment = assign_dims(topology, spec)
    pp_dims, dp_dims, mp_dims = assignment["pp"], assignment["dp"], assignment["mp"]
    if not pp_dims:
        raise ValueError("pipeline generator needs pp > 1")
    num_stages = spec.pp
    layers_per_stage = max(1, model.num_layers // num_stages)
    act = model.activation_bytes()
    fwd_flops = layers_per_stage * model.fwd_flops_per_layer() // max(1, spec.mp)
    bwd_flops = layers_per_stage * model.bwd_flops_per_layer() // max(1, spec.mp)
    stage_grad_bytes = (
        layers_per_stage * model.layer_grad_bytes() // max(1, spec.mp)
    )

    # Representative NPU of each stage: PP coords encode the stage index,
    # all other coordinates zero.
    def stage_rep(stage: int) -> int:
        coords = [0] * topology.num_dims
        rest = stage
        for d in pp_dims:
            coords[d] = rest % topology.dims[d].size
            rest //= topology.dims[d].size
        return topology.npu_id(coords)

    reps = [stage_rep(s) for s in range(num_stages)]
    builders = {reps[s]: TraceBuilder(reps[s]) for s in range(num_stages)}

    def tag(it: int, kind: str, stage: int, mb: int) -> int:
        base = {"f": 0, "b": 1}[kind]
        return ((it * 2 + base) * num_stages + stage) * microbatches + mb + 1

    prev_end: Dict[int, Tuple[int, ...]] = {s: () for s in range(num_stages)}
    for it in range(iterations):
        for s in range(num_stages):
            b = builders[reps[s]]
            prev: Tuple[int, ...] = prev_end[s]
            bwd_done: List[int] = []
            for kind, mb in _stage_op_sequence(schedule, num_stages, s,
                                               microbatches):
                deps = list(prev)
                if kind == "f" and s > 0:
                    deps.append(b.recv(
                        f"it{it}.recvF.s{s}.mb{mb}", reps[s - 1], act,
                        tag(it, "f", s, mb)))
                if kind == "b" and s < num_stages - 1:
                    deps.append(b.recv(
                        f"it{it}.recvB.s{s}.mb{mb}", reps[s + 1], act,
                        tag(it, "b", s, mb)))
                name = "fwd" if kind == "f" else "bwd"
                flops = fwd_flops if kind == "f" else bwd_flops
                cid = b.compute(f"it{it}.{name}.s{s}.mb{mb}", flops, act,
                                deps=deps)
                prev = (cid,)
                if mp_dims:
                    # 3-D parallelism: tensor-parallel activation
                    # All-Reduce within the stage (aggregated per
                    # microbatch over the stage's layers).
                    ar = b.collective(
                        f"it{it}.{name}AR.s{s}.mb{mb}",
                        CollectiveType.ALL_REDUCE,
                        layers_per_stage * act, mp_dims, deps=prev)
                    prev = (ar,)
                if kind == "f" and s < num_stages - 1:
                    b.send(f"it{it}.sendF.s{s}.mb{mb}", reps[s + 1], act,
                           tag(it, "f", s + 1, mb), deps=prev)
                if kind == "b":
                    bwd_done.extend(prev)
                    if s > 0:
                        b.send(f"it{it}.sendB.s{s}.mb{mb}", reps[s - 1], act,
                               tag(it, "b", s - 1, mb), deps=prev)
            if dp_dims:
                ar = b.collective(
                    f"it{it}.gradAR.s{s}", CollectiveType.ALL_REDUCE,
                    stage_grad_bytes, dp_dims,
                    deps=tuple(prev) + tuple(bwd_done[-1:]))
                prev_end[s] = (ar,)
            else:
                prev_end[s] = prev

    return {rep: b.build() for rep, b in builders.items()}


# -- DLRM -----------------------------------------------------------------------------


def generate_dlrm(
    model: DLRMSpec,
    topology: MultiDimTopology,
    iterations: int = 1,
) -> Dict[int, ExecutionTrace]:
    """DLRM: All-to-All embedding exchange + data-parallel MLPs.

    Embedding tables are sharded across every NPU (model parallel over all
    dims); the MLP gradients All-Reduce over all dims — the MP=DP=system
    configuration of Table III.
    """
    builder = TraceBuilder(0)
    all_dims = tuple(range(topology.num_dims))
    a2a = model.alltoall_bytes_per_npu()
    prev_end: Tuple[int, ...] = ()
    for it in range(iterations):
        bot = builder.compute(f"it{it}.fwd.botMLP", model.mlp_flops() // 2,
                              deps=prev_end)
        emb_fwd = builder.collective(
            f"it{it}.fwd.embA2A", CollectiveType.ALL_TO_ALL, a2a, all_dims,
            deps=(bot,))
        top = builder.compute(f"it{it}.fwd.topMLP", model.mlp_flops() // 2,
                              deps=(emb_fwd,))
        top_b = builder.compute(f"it{it}.bwd.topMLP", model.mlp_flops(),
                                deps=(top,))
        emb_bwd = builder.collective(
            f"it{it}.bwd.embA2A", CollectiveType.ALL_TO_ALL, a2a, all_dims,
            deps=(top_b,))
        bot_b = builder.compute(f"it{it}.bwd.botMLP", model.mlp_flops(),
                                deps=(emb_bwd,))
        grad_ar = builder.collective(
            f"it{it}.gradAR.mlp", CollectiveType.ALL_REDUCE,
            model.mlp_grad_bytes(), all_dims, deps=(top_b, bot_b))
        step = builder.compute(f"it{it}.optimizer", model.mlp_params,
                               deps=(grad_ar, bot_b))
        prev_end = (step,)
    return {0: builder.build()}


# -- Mixture of Experts (Sec. V-B disaggregated-memory case study) -------------------------


def generate_moe(
    model: MoESpec,
    topology: MultiDimTopology,
    iterations: int = 1,
    remote_parameters: bool = True,
    inswitch_collectives: bool = False,
) -> Dict[int, ExecutionTrace]:
    """Expert-parallel MoE training with ZeRO-sharded dense parameters.

    Structure per MoE layer: dense/gate compute -> All-to-All dispatch ->
    expert FFN compute -> All-to-All combine; backward mirrors it.

    Parameter handling (Sec. V-B):

    - expert weights live wholly on their owner GPU and, with
      ``remote_parameters``, stream from the remote pool (loads prefetch
      along a chain; gradient shards store back after the backward);
    - dense parameters are ZeRO-3 sharded across all GPUs: each layer
      needs its full dense weights gathered before compute and its dense
      gradients reduce-scattered after the backward.

    With ``inswitch_collectives=False`` (ZeRO-Infinity and the HierMem
    baseline), the dense gather/scatter run as explicit All-Gather /
    Reduce-Scatter collectives over the NPU network — the exposed
    communication that dominates Fig. 11.  With ``inswitch_collectives=
    True`` (the optimized HierMem), they fuse into the memory path:
    parameters are gathered while being loaded and sharded while being
    stored inside the switches (Sec. IV-D model 3), and the token-routing
    All-to-Alls run through the pooled fabric as well — this is what
    "hides communication time" in the paper's 4.6x configuration.
    """
    builder = TraceBuilder(0)
    all_dims = tuple(range(topology.num_dims))
    num_gpus = topology.num_npus
    a2a = model.alltoall_bytes_per_gpu()
    a2a_via = VIA_FABRIC if inswitch_collectives else None
    expert_shard = model.expert_params_per_gpu(num_gpus) * model.dtype_bytes
    dense_layer_bytes = 12 * model.hidden * model.hidden * model.dtype_bytes
    dense_shard = max(1, dense_layer_bytes // num_gpus)
    moe_layers = {
        l for l in range(model.num_layers)
        if l % model.moe_every == model.moe_every - 1
    }

    prev_end: Tuple[int, ...] = ()
    for it in range(iterations):
        prev: Tuple[int, ...] = prev_end
        prev_load: Tuple[int, ...] = prev_end

        # Parameter acquisition, one ready-node per layer.  Loads chain so
        # they prefetch ahead of compute without an explicit window.
        param_ready: Dict[int, int] = {}
        if remote_parameters:
            for layer in range(model.num_layers):
                if inswitch_collectives:
                    # Gather-while-loading: the load of this GPU's dense
                    # shard delivers the fully gathered layer weights.
                    ready = builder.memory(
                        f"it{it}.gatherLoad.dense.L{layer}", dense_shard,
                        remote=True, deps=prev_load, via=VIA_FABRIC)
                else:
                    shard_load = builder.memory(
                        f"it{it}.load.denseShard.L{layer}", dense_shard,
                        remote=True, deps=prev_load)
                    ready = builder.collective(
                        f"it{it}.paramAG.dense.L{layer}",
                        CollectiveType.ALL_GATHER, dense_layer_bytes,
                        all_dims, deps=(shard_load,))
                param_ready[layer] = ready
                prev_load = (ready,)
                if layer in moe_layers:
                    expert_load = builder.memory(
                        f"it{it}.load.experts.L{layer}", expert_shard,
                        remote=True, deps=prev_load)
                    param_ready[layer] = expert_load
                    prev_load = (expert_load,)

        # Forward pass.
        for layer in range(model.num_layers):
            deps = list(prev)
            if layer in param_ready:
                deps.append(param_ready[layer])
            dense = builder.compute(
                f"it{it}.fwd.dense.L{layer}", model.dense_flops_per_gpu(),
                model.alltoall_bytes_per_gpu(), deps=deps)
            prev = (dense,)
            if layer in moe_layers:
                dispatch = builder.collective(
                    f"it{it}.fwd.dispatchA2A.L{layer}",
                    CollectiveType.ALL_TO_ALL, a2a, all_dims, deps=prev,
                    via=a2a_via)
                expert = builder.compute(
                    f"it{it}.fwd.expert.L{layer}",
                    model.expert_flops_per_gpu(), expert_shard,
                    deps=(dispatch,))
                combine = builder.collective(
                    f"it{it}.fwd.combineA2A.L{layer}",
                    CollectiveType.ALL_TO_ALL, a2a, all_dims, deps=(expert,),
                    via=a2a_via)
                prev = (combine,)

        # Backward pass (reverse layer order).
        stores: List[int] = []
        for layer in reversed(range(model.num_layers)):
            if layer in moe_layers:
                grad_dispatch = builder.collective(
                    f"it{it}.bwd.dispatchA2A.L{layer}",
                    CollectiveType.ALL_TO_ALL, a2a, all_dims, deps=prev,
                    via=a2a_via)
                expert_b = builder.compute(
                    f"it{it}.bwd.expert.L{layer}",
                    2 * model.expert_flops_per_gpu(), expert_shard,
                    deps=(grad_dispatch,))
                grad_combine = builder.collective(
                    f"it{it}.bwd.combineA2A.L{layer}",
                    CollectiveType.ALL_TO_ALL, a2a, all_dims,
                    deps=(expert_b,), via=a2a_via)
                prev = (grad_combine,)
                if remote_parameters:
                    opt = builder.compute(
                        f"it{it}.opt.experts.L{layer}",
                        max(1, expert_shard // model.dtype_bytes),
                        deps=(expert_b,))
                    stores.append(builder.memory(
                        f"it{it}.store.expertGrads.L{layer}", expert_shard,
                        store=True, remote=True, deps=(opt,)))
            dense_b = builder.compute(
                f"it{it}.bwd.dense.L{layer}", 2 * model.dense_flops_per_gpu(),
                model.alltoall_bytes_per_gpu(), deps=prev)
            prev = (dense_b,)
            if remote_parameters:
                if inswitch_collectives:
                    # Shard-while-storing: the dense gradient reduces and
                    # scatters inside the switches on its way to the pool.
                    stores.append(builder.memory(
                        f"it{it}.scatterStore.dense.L{layer}", dense_shard,
                        store=True, remote=True, deps=(dense_b,),
                        via=VIA_FABRIC))
                else:
                    rs = builder.collective(
                        f"it{it}.gradRS.dense.L{layer}",
                        CollectiveType.REDUCE_SCATTER, dense_layer_bytes,
                        all_dims, deps=(dense_b,))
                    stores.append(builder.memory(
                        f"it{it}.store.denseShard.L{layer}", dense_shard,
                        store=True, remote=True, deps=(rs,)))

        step = builder.compute(
            f"it{it}.optimizer.dense",
            max(1, model.dense_params // max(1, num_gpus)),
            deps=tuple(stores) + prev)
        prev_end = (step,)
    return {0: builder.build()}

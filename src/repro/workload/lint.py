"""Static validation of trace sets before simulation.

Deadlocks surface at run time; most of their causes are statically
checkable.  :func:`lint_traces` inspects a trace set against its topology
and reports:

- send/recv mismatches: a send with no matching posted receive on the
  destination (or vice versa), per ``(src, dst, tag)`` channel;
- sends or receives naming peers outside the topology;
- collective communicators whose ``involved_npus`` is not a cartesian
  product over dimensions (the hierarchical multi-rail requirement);
- ``comm_dims`` indices outside the topology;
- collective count mismatches between simulated members of the same
  communicator (rendezvous would hang).

:func:`lint_op_graph` applies the same philosophy one layer up, to
frontend-produced operator graphs (:mod:`repro.frontend`): dangling or
self dependencies, duplicate ids, cycles, cost-free ops, shape/cost
mismatches, and routed ops without an exchange payload — reported as
findings instead of raised, so ``repro ingest --lint`` can show them
all at once.

Both return a list of human-readable findings; empty means clean.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import TYPE_CHECKING, Dict, List, Mapping, Tuple

from repro.network.topology import MultiDimTopology
from repro.trace.graph import ExecutionTrace
from repro.trace.node import NodeType

if TYPE_CHECKING:  # avoid a workload <-> frontend import cycle at runtime
    from repro.frontend.ir import OpGraph


def lint_traces(
    traces: Mapping[int, ExecutionTrace],
    topology: MultiDimTopology,
) -> List[str]:
    """Check a trace set for statically detectable simulation hazards."""
    findings: List[str] = []
    sends: Counter = Counter()
    recvs: Counter = Counter()
    collective_counts: Dict[Tuple, Counter] = defaultdict(Counter)

    for npu, trace in traces.items():
        if npu != trace.npu_id:
            findings.append(
                f"trace for NPU {trace.npu_id} registered under key {npu}")
        if not (0 <= npu < topology.num_npus):
            findings.append(
                f"NPU {npu} does not exist in the {topology.num_npus}-NPU "
                "topology")
            continue
        for node in trace:
            if node.node_type is NodeType.COMM_SEND:
                if not (0 <= node.peer < topology.num_npus):
                    findings.append(
                        f"npu {npu} node {node.node_id} sends to "
                        f"nonexistent NPU {node.peer}")
                else:
                    sends[(npu, node.peer, node.tag)] += 1
            elif node.node_type is NodeType.COMM_RECV:
                if not (0 <= node.peer < topology.num_npus):
                    findings.append(
                        f"npu {npu} node {node.node_id} receives from "
                        f"nonexistent NPU {node.peer}")
                else:
                    recvs[(node.peer, npu, node.tag)] += 1
            elif node.is_collective:
                findings.extend(_check_collective(topology, npu, node))
                key = _communicator_key(topology, npu, node)
                if key is not None:
                    collective_counts[key][npu] += 1

    for channel in sorted(set(sends) | set(recvs)):
        n_send, n_recv = sends[channel], recvs[channel]
        if n_send != n_recv:
            src, dst, tag = channel
            findings.append(
                f"channel {src}->{dst} tag {tag}: {n_send} sends vs "
                f"{n_recv} receives")

    for key, per_npu in collective_counts.items():
        simulated = [npu for npu in key[1] if npu in traces]
        counts = {npu: per_npu.get(npu, 0) for npu in simulated}
        if len(set(counts.values())) > 1:
            findings.append(
                f"communicator rep {key[0]}: members issue unequal "
                f"collective counts {counts} (rendezvous would hang)")

    return findings


def lint_op_graph(graph: "OpGraph") -> List[str]:
    """Check a frontend op graph for structural and costing hazards.

    Works on deferred graphs (``OpGraph(..., validate=False)``) so every
    problem is reported, not just the first one an exception would hit.
    """
    from repro.frontend.ir import FrontendError, OpKind, attention_flops, matmul_flops

    findings: List[str] = []
    seen: set = set()
    ids = {op.op_id for op in graph.ops}

    for op in graph.ops:
        label = f"op {op.op_id} ({op.name!r})"
        try:
            op.validate()
        except FrontendError as exc:
            findings.append(str(exc))
        if op.op_id in seen:
            findings.append(f"duplicate op id {op.op_id} in graph "
                            f"{graph.name!r}")
        seen.add(op.op_id)
        for dep in op.deps:
            if dep not in ids:
                findings.append(f"{label} depends on unknown op {dep}")
        if (op.flops <= 0 and op.param_bytes <= 0 and op.output_bytes <= 0
                and not op.routed):
            findings.append(f"{label} contributes no cost (zero flops, "
                            "params, and output)")
        attrs = op.attrs or {}
        if op.kind is OpKind.MATMUL and {"m", "k", "n"} <= attrs.keys():
            expected = matmul_flops(attrs["m"], attrs["k"], attrs["n"])
            if op.flops and op.flops != expected:
                findings.append(
                    f"{label}: flops {op.flops} does not match its "
                    f"m/k/n shape attrs ({expected})")
        if (op.kind is OpKind.ATTENTION
                and {"batch", "seq", "hidden"} <= attrs.keys()):
            expected = attention_flops(attrs["batch"], attrs["seq"],
                                       attrs["hidden"])
            if op.flops and op.flops != expected:
                findings.append(
                    f"{label}: flops {op.flops} does not match its "
                    f"batch/seq/hidden shape attrs ({expected})")
        if op.tp != "none" and op.kind in (OpKind.NORM, OpKind.ELEMENTWISE):
            findings.append(
                f"{label}: {op.kind.value} ops are replicated, not "
                f"tensor-parallel (tp={op.tp!r})")

    # Cycle check over the well-formed subset (Kahn's algorithm).
    indegree = {op.op_id: sum(1 for d in op.deps if d in ids and d != op.op_id)
                for op in graph.ops}
    children: Dict[int, List[int]] = {}
    for op in graph.ops:
        for dep in op.deps:
            if dep in ids and dep != op.op_id:
                children.setdefault(dep, []).append(op.op_id)
    queue = [oid for oid, deg in indegree.items() if deg == 0]
    visited = 0
    while queue:
        oid = queue.pop()
        visited += 1
        for child in children.get(oid, ()):
            indegree[child] -= 1
            if indegree[child] == 0:
                queue.append(child)
    if visited != len(ids):
        cyclic = sorted(oid for oid, deg in indegree.items() if deg > 0)
        findings.append(
            f"graph {graph.name!r} contains a cycle involving ops "
            f"{cyclic[:10]}")

    return findings


def _communicator_key(topology, npu, node):
    if node.involved_npus is not None:
        return (min(node.involved_npus), tuple(sorted(node.involved_npus)))
    dims = node.comm_dims if node.comm_dims is not None else tuple(
        range(topology.num_dims))
    if any(not 0 <= d < topology.num_dims for d in dims):
        return None
    group = topology.group_across_dims(npu, dims)
    return (min(group), group)


def _check_collective(topology, npu, node) -> List[str]:
    findings: List[str] = []
    if node.comm_dims is not None:
        bad = [d for d in node.comm_dims
               if not 0 <= d < topology.num_dims]
        if bad:
            findings.append(
                f"npu {npu} node {node.node_id} ({node.name!r}): comm_dims "
                f"{bad} out of range for {topology.num_dims}-D topology")
            return findings
    if node.involved_npus is not None:
        members = node.involved_npus
        outside = [m for m in members if not 0 <= m < topology.num_npus]
        if outside:
            findings.append(
                f"npu {npu} node {node.node_id} ({node.name!r}): involved "
                f"NPUs {outside} do not exist")
            return findings
        coords = [topology.coords(m) for m in members]
        product = 1
        for d in range(topology.num_dims):
            product *= len({c[d] for c in coords})
        if product != len(set(members)):
            findings.append(
                f"npu {npu} node {node.node_id} ({node.name!r}): "
                f"involved_npus is not a cartesian product over dimensions")
    return findings

"""Model zoo: parameterized specs for the paper's workloads (Table III).

Each spec derives parameter counts, FLOP counts, and activation sizes from
architectural hyperparameters, so generators can emit realistic compute
and communication node metadata without hard-coding magic numbers.

Canned instances:

- :func:`gpt3_175b` — 96 layers, hidden 12288 (~175B params);
- :func:`transformer_1t` — 128 layers, hidden 25600 (~1T params);
- :func:`dlrm_paper` — DLRM with 57M MLP parameters;
- :func:`moe_1t` — Mixture-of-Experts with ~1T total parameters
  (Sec. V-B's disaggregated-memory case study).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransformerSpec:
    """A GPT-style decoder stack.

    FLOP and parameter formulas follow the standard dense-transformer
    accounting: 12 * hidden^2 parameters per layer (4h^2 attention + 8h^2
    MLP), 2 FLOPs per parameter per token for the forward matmuls plus the
    attention score term, and backward costing twice the forward.
    """

    name: str
    num_layers: int
    hidden: int
    seq_len: int
    batch_per_replica: int = 1
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        for field_name in ("num_layers", "hidden", "seq_len",
                           "batch_per_replica", "dtype_bytes"):
            if getattr(self, field_name) < 1:
                raise ValueError(
                    f"{field_name} must be >= 1, got {getattr(self, field_name)}"
                )

    # -- parameters ----------------------------------------------------------------

    @property
    def params_per_layer(self) -> int:
        return 12 * self.hidden * self.hidden

    @property
    def total_params(self) -> int:
        return self.num_layers * self.params_per_layer

    # -- compute -------------------------------------------------------------------

    def fwd_flops_per_layer(self) -> int:
        """Forward FLOPs for one layer at the replica's batch."""
        tokens = self.batch_per_replica * self.seq_len
        matmul = 2 * self.params_per_layer * tokens
        attention = 4 * self.batch_per_replica * self.seq_len**2 * self.hidden
        return matmul + attention

    def bwd_flops_per_layer(self) -> int:
        """Backward is 2x forward (dgrad + wgrad)."""
        return 2 * self.fwd_flops_per_layer()

    # -- communication ----------------------------------------------------------------

    def activation_bytes(self) -> int:
        """One layer's output activation for the replica batch."""
        return (
            self.batch_per_replica * self.seq_len * self.hidden * self.dtype_bytes
        )

    def layer_grad_bytes(self) -> int:
        """Weight-gradient payload of one layer (before MP sharding)."""
        return self.params_per_layer * self.dtype_bytes


@dataclass(frozen=True)
class DLRMSpec:
    """Deep Learning Recommendation Model.

    Embedding tables are model-parallel (sharded by table) and exchanged
    with All-to-All; the MLPs are data-parallel and synchronized with
    All-Reduce (paper Table III lists 57M MLP parameters).
    """

    name: str
    mlp_params: int
    num_tables: int
    emb_dim: int
    batch_per_npu: int
    dtype_bytes: int = 4
    mlp_flops_per_sample: int = 0

    def __post_init__(self) -> None:
        for field_name in ("mlp_params", "num_tables", "emb_dim",
                           "batch_per_npu", "dtype_bytes"):
            if getattr(self, field_name) < 1:
                raise ValueError(
                    f"{field_name} must be >= 1, got {getattr(self, field_name)}"
                )

    def alltoall_bytes_per_npu(self) -> int:
        """Per-NPU embedding-exchange payload for one direction."""
        return (
            self.batch_per_npu * self.num_tables * self.emb_dim * self.dtype_bytes
        )

    def mlp_grad_bytes(self) -> int:
        return self.mlp_params * self.dtype_bytes

    def mlp_flops(self) -> int:
        """Per-NPU MLP forward FLOPs for its local batch."""
        per_sample = self.mlp_flops_per_sample or 2 * self.mlp_params
        return per_sample * self.batch_per_npu


@dataclass(frozen=True)
class MoESpec:
    """Mixture-of-Experts transformer (DeepSpeed-MoE style).

    Every ``moe_every``-th layer replaces its dense MLP with ``num_experts``
    expert FFNs; tokens are routed with All-to-All (expert parallelism).
    Total parameters ~= dense stack + num_moe_layers * num_experts * 8h^2.
    """

    name: str
    num_layers: int
    hidden: int
    seq_len: int
    num_experts: int
    moe_every: int = 2
    batch_per_gpu: int = 4
    top_k: int = 1
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        for field_name in ("num_layers", "hidden", "seq_len", "num_experts",
                           "moe_every", "batch_per_gpu", "top_k", "dtype_bytes"):
            if getattr(self, field_name) < 1:
                raise ValueError(
                    f"{field_name} must be >= 1, got {getattr(self, field_name)}"
                )

    @property
    def num_moe_layers(self) -> int:
        return self.num_layers // self.moe_every

    @property
    def expert_params(self) -> int:
        """Parameters of one expert FFN (two h x 4h matmuls)."""
        return 8 * self.hidden * self.hidden

    @property
    def dense_params(self) -> int:
        return self.num_layers * 12 * self.hidden * self.hidden

    @property
    def total_params(self) -> int:
        return self.dense_params + self.num_moe_layers * self.num_experts * self.expert_params

    def tokens_per_gpu(self) -> int:
        return self.batch_per_gpu * self.seq_len

    def alltoall_bytes_per_gpu(self) -> int:
        """Token-routing payload per GPU for one dispatch (or combine)."""
        return self.tokens_per_gpu() * self.top_k * self.hidden * self.dtype_bytes

    def expert_flops_per_gpu(self) -> int:
        """Forward expert-FFN FLOPs per GPU per MoE layer."""
        return 2 * self.expert_params * self.tokens_per_gpu() * self.top_k

    def dense_flops_per_gpu(self) -> int:
        """Forward FLOPs of one layer's dense part (attention) per GPU."""
        tokens = self.tokens_per_gpu()
        return 2 * 4 * self.hidden * self.hidden * tokens + (
            4 * self.batch_per_gpu * self.seq_len**2 * self.hidden
        )

    def expert_params_per_gpu(self, num_gpus: int) -> int:
        """Expert parameters hosted per GPU under expert parallelism."""
        if num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {num_gpus}")
        experts_per_gpu = max(1.0, self.num_experts / num_gpus)
        return int(experts_per_gpu * self.expert_params)


# -- canned paper workloads (Table III and Sec. V-B) -------------------------------


def gpt3_175b(batch_per_replica: int = 2) -> TransformerSpec:
    """GPT-3: 96 layers, hidden 12288 -> ~175B parameters."""
    return TransformerSpec(
        name="GPT-3",
        num_layers=96,
        hidden=12288,
        seq_len=2048,
        batch_per_replica=batch_per_replica,
    )


def transformer_1t(batch_per_replica: int = 1) -> TransformerSpec:
    """Transformer-1T: 128 layers, hidden 25600 -> ~1T parameters."""
    return TransformerSpec(
        name="Transformer-1T",
        num_layers=128,
        hidden=25600,
        seq_len=2048,
        batch_per_replica=batch_per_replica,
    )


def dlrm_paper(batch_per_npu: int = 64) -> DLRMSpec:
    """DLRM with 57M MLP parameters (paper Table III)."""
    return DLRMSpec(
        name="DLRM",
        mlp_params=57_000_000,
        num_tables=64,
        emb_dim=128,
        batch_per_npu=batch_per_npu,
    )


def moe_1t(batch_per_gpu: int = 4) -> MoESpec:
    """Mixture-of-Experts with ~1.03T parameters (Sec. V-B case study)."""
    return MoESpec(
        name="MoE-1T",
        num_layers=24,
        hidden=4096,
        seq_len=2048,
        num_experts=640,
        moe_every=2,
        batch_per_gpu=batch_per_gpu,
    )

"""NCCL-like reference cost model for ring All-Reduce (Fig. 4 substitute).

Real NCCL ring All-Reduce time on ``k`` GPUs for payload ``S`` follows

    t = 2 (k - 1) * (step_latency + (S / k) / (link_bw * efficiency))
        + base_overhead

where ``efficiency`` < 1 captures protocol overhead (LL/Simple protocol
framing, flush costs) and shrinks slightly for small messages.  We add a
deterministic pseudo-random jitter (hash-seeded, +/- a few percent) so the
"measured" curve is not trivially identical to any closed form — the same
role real measurement noise plays in the paper's Fig. 4 validation, which
reports a 5% mean error for the analytical backend.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Tuple

# Sustained fraction of peak NVLink bandwidth NCCL's Simple protocol
# achieves for large messages on V100 systems.
NCCL_RING_EFFICIENCY = 0.94
_STEP_LATENCY_NS = 1500.0
_BASE_OVERHEAD_NS = 12000.0
_JITTER_AMPLITUDE = 0.03


def _deterministic_jitter(num_gpus: int, payload_bytes: int) -> float:
    """Stable pseudo-noise in [-amplitude, +amplitude]."""
    digest = hashlib.sha256(f"{num_gpus}:{payload_bytes}".encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return (2.0 * unit - 1.0) * _JITTER_AMPLITUDE


def _efficiency(payload_bytes: int) -> float:
    """Bandwidth efficiency: degrades below ~8 MB payloads."""
    knee = 8 << 20
    if payload_bytes >= knee:
        return NCCL_RING_EFFICIENCY
    scale = max(0.25, payload_bytes / knee)
    return NCCL_RING_EFFICIENCY * (0.85 + 0.15 * scale)


def nccl_ring_allreduce_reference_ns(
    num_gpus: int, payload_bytes: int, link_bw_gbps: float = 150.0
) -> float:
    """Reference ("measured") All-Reduce time in ns.

    Args:
        num_gpus: Ring size (the paper measures 4 and 16 V100s).
        payload_bytes: All-Reduce payload per GPU.
        link_bw_gbps: NVLink ring bandwidth (150 GB/s in the paper).
    """
    if num_gpus < 2:
        return 0.0
    if payload_bytes < 0:
        raise ValueError(f"negative payload {payload_bytes}")
    chunk = payload_bytes / num_gpus
    eff_bw = link_bw_gbps * _efficiency(payload_bytes)
    steps = 2 * (num_gpus - 1)
    base = steps * (_STEP_LATENCY_NS + chunk / eff_bw) + _BASE_OVERHEAD_NS
    return base * (1.0 + _deterministic_jitter(num_gpus, payload_bytes))


def reference_curve(
    num_gpus: int,
    payload_sweep_bytes: Sequence[int],
    link_bw_gbps: float = 150.0,
) -> List[Tuple[int, float]]:
    """The full Fig. 4 x-axis: (payload, reference time) pairs."""
    return [
        (s, nccl_ring_allreduce_reference_ns(num_gpus, s, link_bw_gbps))
        for s in payload_sweep_bytes
    ]

"""Calibrated reference measurements standing in for real systems.

The paper validates the analytical backend against NCCL v2.4.6 on 4- and
16-GPU V100 NVLink rings (Fig. 4).  Without that hardware, this package
provides :func:`nccl_ring_allreduce_reference_ns`: an NCCL-like cost model
with the structure real measurements exhibit — per-step launch overhead,
protocol-dependent bandwidth efficiency, and deterministic run-to-run
jitter — used as the "measured" curve the analytical backend is scored
against.
"""

from repro.calibration.nccl_reference import (
    NCCL_RING_EFFICIENCY,
    nccl_ring_allreduce_reference_ns,
    reference_curve,
)

__all__ = [
    "NCCL_RING_EFFICIENCY",
    "nccl_ring_allreduce_reference_ns",
    "reference_curve",
]

"""Synchronization primitives on top of the event engine.

These are small, callback-style analogues of the usual concurrency
primitives.  They carry no time of their own — they only sequence callbacks
— so they compose with :class:`~repro.events.engine.EventEngine` scheduling.
"""

from __future__ import annotations

from typing import Callable, List

from repro.events.engine import EventEngine, SimulationError


class CallbackList:
    """An ordered list of callbacks fired exactly once.

    Used to let multiple parties wait for a single completion (e.g. several
    ET nodes depending on one collective).  Callbacks registered after the
    fire are invoked immediately.
    """

    def __init__(self) -> None:
        self._callbacks: List[Callable[[], None]] = []
        self._fired = False

    @property
    def fired(self) -> bool:
        return self._fired

    def add(self, fn: Callable[[], None]) -> None:
        if self._fired:
            fn()
        else:
            self._callbacks.append(fn)

    def fire(self) -> None:
        if self._fired:
            raise SimulationError("CallbackList fired twice")
        self._fired = True
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn()


class Barrier:
    """Fires a callback after ``parties`` arrivals.

    The canonical use is the synchronous-training join point: the last NPU
    to finish an iteration releases everyone.
    """

    def __init__(self, parties: int, on_release: Callable[[], None]) -> None:
        if parties <= 0:
            raise ValueError(f"parties must be positive, got {parties}")
        self._parties = parties
        self._arrived = 0
        self._on_release = on_release
        self._released = False

    @property
    def arrived(self) -> int:
        return self._arrived

    @property
    def released(self) -> bool:
        return self._released

    def arrive(self) -> None:
        if self._released:
            raise SimulationError("arrival after barrier release")
        self._arrived += 1
        if self._arrived > self._parties:
            raise SimulationError("more arrivals than barrier parties")
        if self._arrived == self._parties:
            self._released = True
            self._on_release()


class Semaphore:
    """Counting semaphore: serializes access to a contended resource.

    Waiters are released FIFO.  Used e.g. to bound concurrent chunks in
    flight on one network dimension.
    """

    def __init__(self, engine: EventEngine, permits: int) -> None:
        if permits <= 0:
            raise ValueError(f"permits must be positive, got {permits}")
        self._engine = engine
        self._permits = permits
        self._waiters: List[Callable[[], None]] = []

    @property
    def available(self) -> int:
        return self._permits

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def acquire(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` once a permit is available (possibly immediately)."""
        if self._permits > 0:
            self._permits -= 1
            fn()
        else:
            self._waiters.append(fn)

    def release(self) -> None:
        """Return a permit; hands it straight to the oldest waiter if any."""
        if self._waiters:
            fn = self._waiters.pop(0)
            # Schedule at now so the waiter runs outside the releaser's frame.
            self._engine.schedule(0.0, fn)
        else:
            self._permits += 1

"""Deterministic discrete-event engine.

The engine maintains a priority queue of :class:`Event` objects keyed by
``(time, priority, sequence)``.  The sequence number makes ordering total and
deterministic: two events scheduled for the same timestamp always fire in
the order they were scheduled (FIFO), which keeps simulations reproducible
across runs and Python versions.

Time is a ``float`` in an arbitrary unit; the rest of the library uses
**nanoseconds** by convention (see :mod:`repro.core.config`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (e.g. scheduling into the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)``; ``fn`` and ``args`` are
    excluded from ordering.  Cancelled events stay in the heap and are
    discarded when popped (lazy deletion), which keeps cancellation O(1).
    """

    time: float
    priority: int
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True


class EventEngine:
    """Single-threaded deterministic event loop with a simulation clock.

    Usage::

        engine = EventEngine()
        engine.schedule(10.0, lambda: print("fired at", engine.now))
        engine.run()

    The engine is *not* re-entrant across threads.  Callbacks may freely
    schedule further events, including at the current time.
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._events_processed: int = 0
        self._running: bool = False
        self._stopped: bool = False

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return sum(1 for e in self._queue if not e.cancelled)

    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` to fire ``delay`` time units from now.

        ``delay`` must be non-negative.  Lower ``priority`` fires first among
        events with the same timestamp; ties break FIFO.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(time=time, priority=priority, seq=self._seq, fn=fn, args=args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the final simulation time.  Events scheduled exactly at
        ``until`` still fire (the bound is inclusive).

        Clock semantics: with ``until`` given, the clock always ends at
        exactly ``until`` when the run is not cut short — including when
        the queue is empty to begin with or drains early — so ``run(until=T)``
        reliably means "advance simulated time to T".  The clock stays
        where the last event fired only when :meth:`stop` was called or
        ``max_events`` was exhausted (both leave work pending).  ``until``
        in the past raises :class:`SimulationError`.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until t={until} before current time t={self._now}")
        self._running = True
        self._stopped = False
        fired = 0
        truncated = False  # stop() or max_events left events unfired
        try:
            while self._queue:
                if self._stopped:
                    truncated = True
                    break
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    truncated = True
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                self._events_processed += 1
                fired += 1
                event.fn(*event.args)
            if (until is not None and not truncated and not self._stopped
                    and self._now < until):
                self._now = until
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight callback returns."""
        self._stopped = True

    def step(self) -> bool:
        """Fire exactly one event.  Returns False if the queue was empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def reset(self) -> None:
        """Discard all pending events and rewind the clock to zero."""
        if self._running:
            raise SimulationError("cannot reset a running engine")
        self._queue.clear()
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0

"""Deterministic discrete-event engine (optimised hot path).

The engine maintains a binary heap of plain ``(time, priority, seq)``
tuples — ``seq`` makes ordering total and deterministic, so two events
scheduled for the same timestamp always fire in the order they were
scheduled (FIFO), which keeps simulations reproducible across runs and
Python versions.  Each tuple carries its :class:`Event` record as a
fourth element that never participates in comparisons (``seq`` is unique,
so tuple comparison always resolves earlier).

This layout replaces the seed's ``@dataclass(order=True)`` heap: plain
tuple comparisons avoid a Python-level ``__lt__`` per sift step, events
are ``__slots__`` records, ``pending`` is a counted O(1) property
instead of an O(n) scan, and lazily-cancelled entries are compacted out
of the heap once they outnumber live ones.  The observable semantics are
bit-identical to the seed engine — enforced by
``tests/property/test_property_event_engine.py`` against the frozen
reference in :mod:`repro.events._seed_reference`.

Time is a ``float`` in an arbitrary unit; the rest of the library uses
**nanoseconds** by convention (see :mod:`repro.core.config`).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

# Pre-bound C functions: saves a module-attribute load per schedule call
# on the hottest paths.
_heappush = heapq.heappush

# Below this many heap entries compaction is pointless churn.
_COMPACT_MIN_ENTRIES = 64

# Upper bound for the inlined invariant guard: a finite timestamp t
# satisfies now <= t < _INF; NaN fails every comparison.
_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (e.g. scheduling into the past)."""


class Event:
    """A scheduled callback handle.

    Events order by ``(time, priority, seq)``; cancellation is O(1) and
    lazy — the heap entry stays behind and is discarded when popped (or
    swept out by compaction when cancelled entries exceed live ones).
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled", "_engine")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple = (),
        engine: Optional["EventEngine"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if not self.cancelled:
            self.cancelled = True
            engine = self._engine
            if engine is not None:
                engine._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"Event(t={self.time}, prio={self.priority}, seq={self.seq}, {state})"


class EventEngine:
    """Single-threaded deterministic event loop with a simulation clock.

    Usage::

        engine = EventEngine()
        engine.schedule(10.0, lambda: print("fired at", engine.now))
        engine.run()

    The engine is *not* re-entrant across threads.  Callbacks may freely
    schedule further events, including at the current time.
    """

    def __init__(self) -> None:
        # Heap of (time, priority, seq, Event).  NOTE: the list object's
        # identity is stable for the engine's lifetime (compaction mutates
        # it in place) so hot loops may alias it locally.
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._events_processed: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self._live: int = 0        # scheduled, not yet fired or cancelled
        self._cancelled: int = 0   # cancelled entries still in the heap
        # Lifetime observability counters (never reset by compaction) and
        # the telemetry collector slot (repro.telemetry samples `pending`
        # from outside the hot loop, so the drain path stays untouched).
        self.cancels: int = 0
        self.compactions: int = 0
        self.telemetry = None
        # Invariant checker slot (repro.validate.InvariantChecker);
        # None keeps every schedule path un-instrumented.  The guards
        # below catch what the delay/time raises cannot: NaN and
        # infinite timestamps compare False against every bound and
        # would corrupt heap ordering silently.
        self.invariants = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live events still in the queue — O(1), counted."""
        return self._live

    # -- scheduling --------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` to fire ``delay`` time units from now.

        ``delay`` must be non-negative.  Lower ``priority`` fires first among
        events with the same timestamp; ties break FIFO.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        # Inlined schedule_at: delay >= 0 guarantees time >= now, and this
        # is the single hottest call in every simulation.
        time = self._now + delay
        # Inlined invariant guard: the chained comparison fails for NaN
        # and +/-inf as well as time travel, so the checker is only
        # entered on an actual anomaly (see check_event_time).
        if self.invariants is not None and not (
                self._now <= time < _INF):
            self.invariants.event_time_anomaly(time, self._now)
        seq = self._seq
        self._seq = seq + 1
        # Inlined Event construction (no __init__ frame): self-scheduling
        # event chains pay one schedule() per event fired, so this is as
        # hot as the drain loop itself.
        event = Event.__new__(Event)
        event.time = time
        event.priority = priority
        event.seq = seq
        event.fn = fn
        event.args = args
        event.cancelled = False
        event._engine = self
        _heappush(self._queue, (time, priority, seq, event))
        self._live += 1
        return event

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        if self.invariants is not None and not (
                self._now <= time < _INF):
            self.invariants.event_time_anomaly(time, self._now)
        seq = self._seq
        self._seq = seq + 1
        event = Event.__new__(Event)
        event.time = time
        event.priority = priority
        event.seq = seq
        event.fn = fn
        event.args = args
        event.cancelled = False
        event._engine = self
        _heappush(self._queue, (time, priority, seq, event))
        self._live += 1
        return event

    def schedule_many(
        self,
        items: Iterable[Sequence],
        priority: int = 0,
    ) -> int:
        """Batched fire-and-forget scheduling: each item is ``(delay, fn)``
        or ``(delay, fn, args_tuple)``.  Returns the number scheduled.

        Firing order is identical to issuing the equivalent
        :meth:`schedule` calls one by one (sequence numbers are assigned
        in item order).  This is the bulk hot path: no :class:`Event`
        handle is constructed (so the entries cannot be cancelled), and
        when the batch rivals the existing heap in size the entries are
        appended and re-heapified in one O(n) pass instead of n pushes.
        """
        batch: List[Tuple[float, int, int, Callable[..., None], tuple]] = []
        append = batch.append
        now = self._now
        seq = self._seq
        invariants = self.invariants
        for item in items:
            delay = item[0]
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule into the past (delay={delay})")
            if invariants is not None and not (now <= now + delay < _INF):
                invariants.event_time_anomaly(now + delay, now)
            append((now + delay, priority, seq, item[1],
                    item[2] if len(item) > 2 else ()))
            seq += 1
        self._seq = seq
        queue = self._queue
        if len(batch) >= max(4, len(queue)):
            queue.extend(batch)
            heapq.heapify(queue)
        else:
            push = heapq.heappush
            for entry in batch:
                push(queue, entry)
        self._live += len(batch)
        return len(batch)

    # -- cancellation bookkeeping --------------------------------------------------

    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` exactly once per live event."""
        self._live -= 1
        self._cancelled += 1
        self.cancels += 1
        queue = self._queue
        if (self._cancelled * 2 > len(queue)
                and len(queue) >= _COMPACT_MIN_ENTRIES):
            self._compact()

    def _compact(self) -> None:
        """Sweep cancelled entries out of the heap (in place: hot loops
        alias the list object).  Batched 5-tuple entries have no handle
        and are never cancelled."""
        self._queue[:] = [
            e for e in self._queue if len(e) != 4 or not e[3].cancelled
        ]
        heapq.heapify(self._queue)
        self._cancelled = 0
        self.compactions += 1

    # -- running -------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the final simulation time.  Events scheduled exactly at
        ``until`` still fire (the bound is inclusive).

        Clock semantics: with ``until`` given, the clock always ends at
        exactly ``until`` when the run is not cut short — including when
        the queue is empty to begin with or drains early — so ``run(until=T)``
        reliably means "advance simulated time to T".  The clock stays
        where the last event fired only when :meth:`stop` was called or
        ``max_events`` was exhausted (both leave work pending).  ``until``
        in the past raises :class:`SimulationError`.

        The unbounded call (no ``until``, no ``max_events``) — the drain
        path every simulation's main loop takes — runs a tighter loop with
        no bound checks per event.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until t={until} before current time t={self._now}")
        self._running = True
        self._stopped = False
        try:
            if until is None and max_events is None:
                self._drain()
            else:
                self._run_bounded(until, max_events)
        finally:
            self._running = False
        return self._now

    def _drain(self) -> None:
        """Hot path: fire everything, stopping only on :meth:`stop`."""
        queue = self._queue
        pop = heapq.heappop
        while queue:
            if self._stopped:
                break
            entry = pop(queue)
            if len(entry) == 4:
                event = entry[3]
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                self._now = entry[0]
                self._live -= 1
                self._events_processed += 1
                # Detach so a cancel() after firing can't skew counters.
                event._engine = None
                event.fn(*event.args)
            else:  # batched (time, priority, seq, fn, args) entry
                self._now = entry[0]
                self._live -= 1
                self._events_processed += 1
                entry[3](*entry[4])

    def _run_bounded(self, until: Optional[float], max_events: Optional[int]) -> None:
        """General path with until/max_events bounds (seed semantics)."""
        queue = self._queue
        pop = heapq.heappop
        fired = 0
        truncated = False  # stop() or max_events left events unfired
        while queue:
            if self._stopped:
                truncated = True
                break
            head = queue[0]
            if len(head) == 4 and head[3].cancelled:
                pop(queue)
                self._cancelled -= 1
                continue
            if until is not None and head[0] > until:
                self._now = until
                break
            if max_events is not None and fired >= max_events:
                truncated = True
                break
            entry = pop(queue)
            self._now = entry[0]
            self._live -= 1
            self._events_processed += 1
            fired += 1
            if len(entry) == 4:
                event = entry[3]
                event._engine = None
                event.fn(*event.args)
            else:
                entry[3](*entry[4])
        if (until is not None and not truncated and not self._stopped
                and self._now < until):
            self._now = until

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight callback returns."""
        self._stopped = True

    def step(self) -> bool:
        """Fire exactly one event.  Returns False if the queue was empty."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            if len(entry) == 4:
                event = entry[3]
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                self._now = entry[0]
                self._live -= 1
                self._events_processed += 1
                event._engine = None
                event.fn(*event.args)
            else:
                self._now = entry[0]
                self._live -= 1
                self._events_processed += 1
                entry[3](*entry[4])
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty."""
        queue = self._queue
        while queue and len(queue[0]) == 4 and queue[0][3].cancelled:
            heapq.heappop(queue)
            self._cancelled -= 1
        return queue[0][0] if queue else None

    def reset(self) -> None:
        """Discard all pending events and rewind the clock to zero."""
        if self._running:
            raise SimulationError("cannot reset a running engine")
        self._queue.clear()
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._live = 0
        self._cancelled = 0
        self.cancels = 0
        self.compactions = 0

"""Frozen copy of the original (seed) event engine — a differential oracle.

This module preserves the pre-optimisation implementation of
:class:`~repro.events.engine.EventEngine` verbatim: a heap of
``@dataclass(order=True)`` events compared by ``(time, priority, seq)``
with lazy cancellation and an O(n) ``pending`` scan.

It exists for two reasons and must NOT be used in production code:

1. **Observational-equivalence tests** — property tests replay random
   schedule/cancel/stop/until programs on this oracle and on the
   optimised engine and require identical ``(time, seq)`` firing
   sequences (``tests/property/test_property_event_engine.py``).
2. **The events/sec microbenchmark** — ``benchmarks/perf`` measures the
   optimised kernel's speedup against this exact baseline.

Do not "fix" or optimise this file; its value is that it never changes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.events.engine import SimulationError


@dataclass(order=True)
class SeedEvent:
    """Seed-era scheduled callback (dataclass-ordered heap entry)."""

    time: float
    priority: int
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class SeedEventEngine:
    """The seed event loop, kept bit-for-bit as a behavioural reference."""

    def __init__(self) -> None:
        self._queue: list = []
        self._now: float = 0.0
        self._seq: int = 0
        self._events_processed: int = 0
        self._running: bool = False
        self._stopped: bool = False

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any,
                 priority: int = 0) -> SeedEvent:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any,
                    priority: int = 0) -> SeedEvent:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = SeedEvent(time=time, priority=priority, seq=self._seq, fn=fn, args=args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until t={until} before current time t={self._now}")
        self._running = True
        self._stopped = False
        fired = 0
        truncated = False
        try:
            while self._queue:
                if self._stopped:
                    truncated = True
                    break
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    truncated = True
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                self._events_processed += 1
                fired += 1
                event.fn(*event.args)
            if (until is not None and not truncated and not self._stopped
                    and self._now < until):
                self._now = until
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        self._stopped = True

    def step(self) -> bool:
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def peek_time(self) -> Optional[float]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def reset(self) -> None:
        if self._running:
            raise SimulationError("cannot reset a running engine")
        self._queue.clear()
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0

"""Discrete-event simulation kernel.

This subpackage is the substrate every other layer of the simulator is
built on.  It provides a deterministic, single-threaded event queue with a
simulation clock (:class:`EventEngine`), lightweight one-shot timers, and a
few reusable synchronization primitives (:class:`Barrier`,
:class:`Semaphore`) used by the system and memory layers.

The kernel is callback-based rather than coroutine-based: ASTRA-sim's
NetworkAPI is itself a callback protocol (``sim_send(..., callback)``), so a
callback kernel keeps the port faithful and avoids generator bookkeeping in
the hot path.
"""

from repro.events.engine import Event, EventEngine, SimulationError
from repro.events.primitives import Barrier, CallbackList, Semaphore

__all__ = [
    "Barrier",
    "CallbackList",
    "Event",
    "EventEngine",
    "Semaphore",
    "SimulationError",
]

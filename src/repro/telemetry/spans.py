"""Hierarchical simulated-time spans and dependency flows.

A *span* is a named interval of simulated time on a *track* — a string
such as ``"collectives"``, ``"port npu0.d2"``, or ``"link (0,)->(1,)"``
that the Chrome-trace exporter maps to its own thread lane.  A *flow* is
a directed arrow between two points on (possibly different) tracks; the
executor uses flows to link each collective to its predecessor on the
same communicator, so pipeline bubbles are traceable to the operation
that caused them.

The recorder is bounded: past ``max_spans`` recorded spans, further adds
are counted in ``dropped`` instead of stored (the count is exported, so
truncation is never silent).
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from typing import Any, Dict, List, Optional, Tuple

#: (track, name, category, start_ns, end_ns, args-or-None)
SpanTuple = Tuple[str, str, str, float, float, Optional[Dict[str, Any]]]
#: (flow_id, src_track, src_ts_ns, dst_track, dst_ts_ns, name)
FlowTuple = Tuple[int, str, float, str, float, str]


class SpanRecorder:
    """Bounded append-only store of finished spans and flows."""

    def __init__(self, max_spans: int = 100_000) -> None:
        self.max_spans = max_spans
        self.spans: List[SpanTuple] = []
        self.flows: List[FlowTuple] = []
        self.dropped = 0
        self._next_flow_id = 1

    def add(self, track: str, name: str, category: str,
            start_ns: float, end_ns: float,
            args: Optional[Dict[str, Any]] = None) -> None:
        """Record one finished span; drops (and counts) past the cap."""
        if end_ns < start_ns:
            raise ValueError(
                f"span {name!r} ends before it starts ({start_ns}, {end_ns})")
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append((track, name, category, start_ns, end_ns, args))

    def flow(self, src_track: str, src_ts_ns: float,
             dst_track: str, dst_ts_ns: float, name: str = "dep") -> int:
        """Record a dependency arrow; returns its flow id."""
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        self.flows.append(
            (flow_id, src_track, src_ts_ns, dst_track, dst_ts_ns, name))
        return flow_id

    def tracks(self) -> List[str]:
        """Distinct track names in first-use order."""
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span[0])
        for flow in self.flows:
            seen.setdefault(flow[1])
            seen.setdefault(flow[3])
        return list(seen)

    def by_category(self) -> Dict[str, int]:
        return dict(_TallyCounter(span[2] for span in self.spans))

    def summary(self) -> Dict[str, Any]:
        return {
            "count": len(self.spans),
            "flows": len(self.flows),
            "dropped": self.dropped,
            "by_category": self.by_category(),
        }

"""Metrics primitives: counters, gauges, time-weighted histograms.

Every metric is keyed by ``(layer, name, labels)`` — ``layer`` is the
simulator layer that owns it (``events``, ``network``, ``system``,
``memory``), ``name`` is the quantity, and ``labels`` is a sorted tuple
of ``(key, value)`` pairs distinguishing instances (``dim=2``,
``location=remote``).  The registry hands out live metric objects, so hot
paths fetch a metric once and then pay only an attribute update per
observation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, Any], ...]
MetricKey = Tuple[str, str, LabelKey]


class Counter:
    """A monotonically increasing total (bytes, events, escalations)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def to_payload(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class TimeSeries:
    """A bounded ``(t, value)`` series with decimation.

    When the sample count exceeds ``max_samples`` every other point is
    dropped, so the series always covers the full horizon at whatever
    resolution the cap affords (the standard trick for unknown-length
    runs).
    """

    __slots__ = ("times", "values", "max_samples", "decimations")

    def __init__(self, max_samples: int = 512) -> None:
        self.times: List[float] = []
        self.values: List[float] = []
        self.max_samples = max_samples
        self.decimations = 0

    def append(self, t: float, value: float) -> None:
        self.times.append(t)
        self.values.append(value)
        if len(self.times) > self.max_samples:
            self.times = self.times[::2]
            self.values = self.values[::2]
            self.decimations += 1

    def __len__(self) -> int:
        return len(self.times)


class Gauge:
    """A point-in-time level (heap size, queue depth, occupancy).

    ``sample`` additionally appends to the gauge's time series, which the
    Chrome-trace exporter turns into a Perfetto counter track.
    """

    __slots__ = ("value", "series")

    def __init__(self, max_samples: int = 512) -> None:
        self.value = 0.0
        self.series = TimeSeries(max_samples)

    def set(self, value: float) -> None:
        self.value = value

    def sample(self, t: float, value: float) -> None:
        self.value = value
        self.series.append(t, value)

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"type": "gauge", "value": self.value}
        if len(self.series):
            payload["series"] = {
                "t_ns": list(self.series.times),
                "value": list(self.series.values),
            }
        return payload


class TimeWeightedHistogram:
    """Statistics of a level weighted by how long it held each value.

    ``update(t, v)`` charges the elapsed time since the previous update to
    the previous value; ``close(t)`` flushes the final segment.  The
    time-weighted mean is then ``sum(v_i * dt_i) / sum(dt_i)`` — the
    right average for quantities like pipeline depth or occupancy, where
    a plain per-observation mean over-weights brief excursions.
    """

    __slots__ = ("weight", "weighted_sum", "min", "max", "observations",
                 "_last_t", "_last_v")

    def __init__(self) -> None:
        self.weight = 0.0
        self.weighted_sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.observations = 0
        self._last_t: Optional[float] = None
        self._last_v = 0.0

    def update(self, t: float, value: float) -> None:
        if self._last_t is not None and t > self._last_t:
            span = t - self._last_t
            self.weight += span
            self.weighted_sum += self._last_v * span
        self._last_t = t
        self._last_v = value
        self.observations += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def close(self, t: float) -> None:
        """Flush the open segment up to ``t`` (idempotent per instant)."""
        if self._last_t is not None and t > self._last_t:
            span = t - self._last_t
            self.weight += span
            self.weighted_sum += self._last_v * span
            self._last_t = t

    @property
    def mean(self) -> float:
        return self.weighted_sum / self.weight if self.weight else 0.0

    def to_payload(self) -> Dict[str, Any]:
        return {
            "type": "time_weighted_histogram",
            "weight_ns": self.weight,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "observations": self.observations,
        }


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """The ``(layer, name, labels)`` keyed store of live metrics."""

    def __init__(self, max_series_samples: int = 512) -> None:
        self._metrics: Dict[MetricKey, Any] = {}
        self._max_series_samples = max_series_samples

    def __len__(self) -> int:
        return len(self._metrics)

    def counter(self, layer: str, name: str, **labels: Any) -> Counter:
        key = (layer, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Counter()
        return metric

    def gauge(self, layer: str, name: str, **labels: Any) -> Gauge:
        key = (layer, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Gauge(self._max_series_samples)
        return metric

    def histogram(self, layer: str, name: str,
                  **labels: Any) -> TimeWeightedHistogram:
        key = (layer, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = TimeWeightedHistogram()
        return metric

    def get(self, layer: str, name: str, **labels: Any) -> Optional[Any]:
        """Look up a metric without creating it."""
        return self._metrics.get((layer, name, _label_key(labels)))

    def value(self, layer: str, name: str, **labels: Any) -> float:
        """Convenience: a metric's scalar value, 0.0 if absent."""
        metric = self.get(layer, name, **labels)
        return metric.value if metric is not None else 0.0

    def items(self):
        return self._metrics.items()

    def to_list(self) -> List[Dict[str, Any]]:
        """Flatten to JSON-ready dicts, sorted for stable output."""
        out = []
        for (layer, name, labels), metric in sorted(
                self._metrics.items(),
                key=lambda kv: (kv[0][0], kv[0][1], repr(kv[0][2]))):
            entry = {"layer": layer, "name": name,
                     "labels": {k: v for k, v in labels}}
            entry.update(metric.to_payload())
            out.append(entry)
        return out

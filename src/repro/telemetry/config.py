"""Telemetry configuration: trace levels and collection knobs.

Telemetry follows the same activation contract as the fault subsystem
(:mod:`repro.faults`): a :class:`~repro.core.config.SystemConfig` without
a :class:`TelemetryConfig` installs nothing, every instrumentation hook
stays on its ``if telemetry is None`` fast path, and results are
bit-identical to a build without the telemetry subsystem.  The overhead
budget of the installed-but-idle state is enforced by
``benchmarks/perf/test_perf_smoke.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TelemetryError(ValueError):
    """Raised for invalid telemetry configuration."""


class TraceLevel(enum.IntEnum):
    """Span-recording depth along the run > collective > chunk > packet
    hierarchy.  Levels are cumulative: ``CHUNK`` also records everything
    ``COLLECTIVE`` does.  Metrics and counter tracks are independent of
    the level — any enabled telemetry collects them; the level gates only
    how many *spans* the recorder emits (the expensive part).
    """

    OFF = 0          # metrics only; no spans
    PHASE = 1        # run span + per-NPU activity phases (the base trace)
    COLLECTIVE = 2   # + one span and dependency arrow per collective
    CHUNK = 3        # + one span per chunk phase (port occupation)
    PACKET = 4       # + one span per packet segment (detailed backends)

    @classmethod
    def parse(cls, name: str) -> "TraceLevel":
        """Parse a CLI-style level name (``"chunk"``) into a level."""
        try:
            return cls[name.strip().upper()]
        except KeyError:
            valid = ", ".join(level.name.lower() for level in cls)
            raise TelemetryError(
                f"unknown trace level {name!r}; expected one of: {valid}")


@dataclass(frozen=True)
class TelemetryConfig:
    """Everything the telemetry collector needs.

    Attributes:
        trace_level: Span depth (see :class:`TraceLevel`).
        sample_interval_ns: Initial period of the simulated-time sampler
            that feeds gauge time series (heap size, queue depths,
            scheduler occupancy).  The sampler is adaptive — the interval
            doubles whenever a burst of ``samples_per_doubling`` fires —
            so long runs stay cheap without knowing the horizon up
            front.  ``0`` disables sampling entirely.
        samples_per_doubling: Samples taken before the interval doubles.
        max_series_samples: Per-series retention cap; older points are
            decimated (every other sample dropped) when exceeded.
        max_spans: Global span cap; spans past the cap are counted as
            dropped rather than recorded (no silent truncation — the
            drop count is exported).
        max_link_metrics: Per-link metric cap at finalization; the
            heaviest links are kept and the dropped count is exported.
    """

    trace_level: TraceLevel = TraceLevel.PHASE
    sample_interval_ns: float = 1000.0
    samples_per_doubling: int = 256
    max_series_samples: int = 512
    max_spans: int = 100_000
    max_link_metrics: int = 256

    def __post_init__(self) -> None:
        if not isinstance(self.trace_level, TraceLevel):
            raise TelemetryError(
                f"trace_level must be a TraceLevel, got {self.trace_level!r}")
        if self.sample_interval_ns < 0:
            raise TelemetryError(
                f"sample_interval_ns must be >= 0, got {self.sample_interval_ns}")
        if self.samples_per_doubling < 1:
            raise TelemetryError(
                f"samples_per_doubling must be >= 1, "
                f"got {self.samples_per_doubling}")
        if self.max_series_samples < 2:
            raise TelemetryError(
                f"max_series_samples must be >= 2, got {self.max_series_samples}")
        if self.max_spans < 0:
            raise TelemetryError(f"max_spans must be >= 0, got {self.max_spans}")
        if self.max_link_metrics < 1:
            raise TelemetryError(
                f"max_link_metrics must be >= 1, got {self.max_link_metrics}")

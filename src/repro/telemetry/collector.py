"""The telemetry collector: installation, sampling, and finalization.

One :class:`Telemetry` instance serves one simulation run, mirroring the
:class:`~repro.faults.injector.FaultInjector` contract:

- :meth:`Telemetry.install` attaches the collector to the event engine,
  the network backend, the execution engine, and any memory models, and
  schedules the adaptive simulated-time sampler;
- during the run, layers feed it through small guarded hooks
  (``if telemetry is not None``) — an absent collector keeps every hook
  on its zero-cost fast path;
- :meth:`Telemetry.finalize` sweeps the end-of-run state (engine
  counters, per-link/port statistics, exposed-time breakdown) into the
  metrics registry and returns the :class:`TelemetryReport` that lands in
  ``RunResult.telemetry`` and ``--metrics-out``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.telemetry.config import TelemetryConfig, TraceLevel
from repro.telemetry.metrics import Counter, MetricsRegistry
from repro.telemetry.profiling import WallClockProfiler
from repro.telemetry.spans import SpanRecorder

#: Version of the exported ``metrics.json`` document layout.  Bump when a
#: field is renamed or re-typed; consumers key on it.
METRICS_SCHEMA_VERSION = 1

#: The sampler fires after all same-time workload events (large positive
#: priority), so sampled levels reflect the state *between* timestamps.
SAMPLER_PRIORITY = 1_000_000


class Telemetry:
    """Per-run metrics registry + span recorder + self-profiler."""

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self.metrics = MetricsRegistry(self.config.max_series_samples)
        self.spans = SpanRecorder(self.config.max_spans)
        self.profile = WallClockProfiler()
        level = self.config.trace_level
        # Pre-computed level gates: hot paths test one attribute.
        self.phase_spans = level >= TraceLevel.PHASE
        self.collective_spans = level >= TraceLevel.COLLECTIVE
        self.chunk_spans = level >= TraceLevel.CHUNK
        self.packet_spans = level >= TraceLevel.PACKET
        self._engine = None
        self._network = None
        self._execution = None
        self._memory_models: Tuple[Any, ...] = ()
        self._sample_interval = self.config.sample_interval_ns
        self._samples_taken = 0
        self._finalized = False
        # Hot-path metric caches (dict lookup beats registry tuple keying).
        self._dim_traffic: Dict[int, Counter] = {}
        self._phase_counter = self.metrics.counter("system", "chunk_phases")
        self._heap_gauge = self.metrics.gauge("events", "heap_size")
        self._last_collective: Dict[Any, float] = {}

    # -- installation ------------------------------------------------------------

    def install(self, engine, network=None, execution=None,
                memory_models: Tuple[Any, ...] = ()) -> None:
        """Attach to a run's layers and start the simulated-time sampler."""
        self._engine = engine
        engine.telemetry = self
        if network is not None:
            self._network = network
            network.telemetry = self
        if execution is not None:
            self._execution = execution
            execution.telemetry = self
        attached = []
        for model in memory_models:
            # Memory models are plain objects shared across runs; only
            # attach where the class opts in with a ``telemetry`` slot
            # (finalize detaches, so a later un-instrumented run never
            # records into a stale collector).
            if model is not None and hasattr(type(model), "telemetry"):
                model.telemetry = self
                attached.append(model)
        self._memory_models = tuple(attached)
        if self._sample_interval > 0:
            engine.schedule(0.0, self._sample, priority=SAMPLER_PRIORITY)

    # -- sampling ----------------------------------------------------------------

    def _sample(self) -> None:
        engine = self._engine
        now = engine.now
        self._heap_gauge.sample(now, engine.pending)
        network = self._network
        if network is not None:
            network.telemetry_sample(self, now)
        execution = self._execution
        if execution is not None:
            execution.telemetry_sample(self, now)
        self._samples_taken += 1
        if self._samples_taken % self.config.samples_per_doubling == 0:
            # Adaptive cadence: burst budget exhausted, halve the rate, so
            # total sampler events grow with log(horizon), not horizon.
            self._sample_interval *= 2
        if engine.pending > 0:
            # Only reschedule while real work remains, so the sampler
            # never keeps the event queue alive on its own.
            engine.schedule(self._sample_interval, self._sample,
                            priority=SAMPLER_PRIORITY)

    # -- hot-path hooks ----------------------------------------------------------

    def add_dim_traffic(self, dim: int, nbytes: float) -> None:
        """Charge serialized bytes to a topology dimension's counter."""
        counter = self._dim_traffic.get(dim)
        if counter is None:
            counter = self._dim_traffic[dim] = self.metrics.counter(
                "network", "dim_traffic_bytes", dim=dim)
        counter.value += nbytes

    def record_phase(self, rep_npu: int, dim: int, label: str,
                     start_ns: float, end_ns: float) -> None:
        """One traced chunk phase on its port lane.

        Span-only: callers gate on ``telemetry.chunk_spans`` *before* the
        call (the faults ``idle`` pattern), so untraced runs pay one
        attribute test per phase and nothing else.  Traffic accounting
        happens once per collective in :meth:`record_collective`.
        """
        self._phase_counter.value += 1
        self.spans.add(f"port npu{rep_npu}.d{dim}", label, "chunk",
                       start_ns, end_ns)

    def record_collective(self, record, comm_key: Any) -> None:
        """One completed collective: counters, span, and dependency flow."""
        for dim, nbytes in record.traffic_by_dim.items():
            self.add_dim_traffic(dim, nbytes)
        self.metrics.counter("system", "collectives_completed").inc()
        self.metrics.counter("system", "collective_bytes").inc(
            record.payload_bytes)
        if not self.collective_spans:
            return
        track = "collectives"
        self.spans.add(
            track, record.name, "collective", record.start_ns,
            record.finish_ns,
            {"collective": record.collective,
             "payload_bytes": record.payload_bytes,
             "group_size": record.group_size,
             "rep_npu": record.rep_npu})
        previous_finish = self._last_collective.get(comm_key)
        if previous_finish is not None:
            self.spans.flow(track, previous_finish, track, record.start_ns,
                            name="comm-order")
        self._last_collective[comm_key] = record.finish_ns

    def record_memory(self, location: str, size_bytes: float,
                      duration_ns: float, fabric: bool = False) -> None:
        """One memory node issued by the execution engine."""
        labels = {"location": location}
        if fabric:
            labels["via"] = "fabric"
        self.metrics.counter("memory", "bytes", **labels).inc(size_bytes)
        self.metrics.counter("memory", "accesses", **labels).inc()
        self.metrics.counter("memory", "busy_ns", **labels).inc(duration_ns)

    # -- finalization ------------------------------------------------------------

    def finalize(self, total_ns: float, breakdown=None) -> "TelemetryReport":
        """Sweep end-of-run state into the registry and build the report."""
        if self._finalized:
            raise RuntimeError("telemetry finalized twice")
        self._finalized = True
        engine = self._engine
        if engine is not None:
            self.metrics.counter("events", "events_processed").value = float(
                engine.events_processed)
            self.metrics.counter("events", "events_scheduled").value = float(
                engine._seq)
            self.metrics.counter("events", "cancels").value = float(
                getattr(engine, "cancels", 0))
            self.metrics.counter("events", "compactions").value = float(
                getattr(engine, "compactions", 0))
        network = self._network
        if network is not None:
            network.telemetry_finalize(self, total_ns)
        if breakdown is not None:
            for activity, exposed in breakdown.exposed_ns.items():
                self.metrics.gauge(
                    "system", "exposed_ns",
                    activity=activity.value).set(exposed)
            self.metrics.gauge("system", "idle_ns").set(breakdown.idle_ns)
        for model in self._memory_models:
            model.telemetry = None
        if self.phase_spans:
            self.spans.add("run", "run", "run", 0.0, total_ns)
        return TelemetryReport(
            trace_level=self.config.trace_level.name.lower(),
            metrics=self.metrics,
            spans=self.spans,
            profile=self.profile,
        )


@dataclass
class TelemetryReport:
    """The finalized telemetry of one run (``RunResult.telemetry``)."""

    trace_level: str
    metrics: MetricsRegistry
    spans: SpanRecorder
    profile: WallClockProfiler
    schema_version: int = METRICS_SCHEMA_VERSION

    def metric_value(self, layer: str, name: str, **labels: Any) -> float:
        """Scalar value of one metric (0.0 if never recorded)."""
        return self.metrics.value(layer, name, **labels)

    def to_dict(self, include_profile: bool = True) -> Dict[str, Any]:
        """JSON-ready document (the ``metrics.json`` schema).

        ``include_profile=False`` drops the wall-clock profile block —
        used by :func:`repro.stats.export.result_to_dict`, which promises
        bit-reproducible output across runs.
        """
        doc: Dict[str, Any] = {
            "schema_version": self.schema_version,
            "trace_level": self.trace_level,
            "metrics": self.metrics.to_list(),
            "spans": self.spans.summary(),
        }
        if include_profile:
            doc["profile"] = self.profile.to_dict()
        return doc


def dump_metrics_json(report: TelemetryReport, path: Union[str, Path],
                      indent: int = 2) -> None:
    """Write a report to a ``metrics.json`` file."""
    Path(path).write_text(json.dumps(report.to_dict(), indent=indent))


def load_metrics_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Read back a dumped metrics document (as a plain dict)."""
    return json.loads(Path(path).read_text())

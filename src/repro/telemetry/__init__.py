"""Unified telemetry: metrics registry, span tracing, self-profiling.

The observability layer of the simulator (see ``docs/observability.md``):

- a **metrics registry** of counters, gauges, and time-weighted
  histograms keyed by ``(layer, name, labels)``, wired into the event
  engine, all three network backends, the system layer, and the memory
  layer;
- a **span model** — hierarchical simulated-time spans (run >
  collective > chunk > packet, depth set by
  :class:`TraceLevel`) plus dependency flows, exported as Perfetto
  counter tracks and flow arrows through :mod:`repro.stats.chrometrace`;
- **self-profiling** — wall-clock attribution of simulator sections,
  surfaced in ``RunResult.telemetry`` and the ``--metrics-out`` export.

Telemetry is zero-cost when disabled: a :class:`~repro.core.config.
SystemConfig` without a :class:`TelemetryConfig` installs nothing and
every instrumentation hook stays on its ``if telemetry is None`` fast
path (same contract as :mod:`repro.faults`).

Typical use::

    from repro import SystemConfig, simulate
    from repro.telemetry import TelemetryConfig, TraceLevel

    config = SystemConfig(topology=topo, telemetry=TelemetryConfig(
        trace_level=TraceLevel.COLLECTIVE))
    result = simulate(traces, config)
    print(result.telemetry.metric_value("network", "dim_traffic_bytes", dim=0))
"""

from repro.telemetry.collector import (
    METRICS_SCHEMA_VERSION,
    Telemetry,
    TelemetryReport,
    dump_metrics_json,
    load_metrics_json,
)
from repro.telemetry.config import TelemetryConfig, TelemetryError, TraceLevel
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    TimeSeries,
    TimeWeightedHistogram,
)
from repro.telemetry.profiling import WallClockProfiler
from repro.telemetry.spans import SpanRecorder

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "SpanRecorder",
    "Telemetry",
    "TelemetryConfig",
    "TelemetryError",
    "TelemetryReport",
    "TimeSeries",
    "TimeWeightedHistogram",
    "TraceLevel",
    "WallClockProfiler",
    "dump_metrics_json",
    "load_metrics_json",
]

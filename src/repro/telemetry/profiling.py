"""Self-profiling: wall-clock attribution of simulator sections.

Answers "where does the *simulator* spend host time" (as opposed to where
the *simulated system* spends simulated time): trace construction, the
event-loop drain, result collection.  Everything here is wall-clock
dependent, so it is exported only through ``--metrics-out`` / the
``RunResult.telemetry`` profile block — never through
:func:`repro.stats.export.result_to_dict`, which must stay
bit-reproducible across runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict


class WallClockProfiler:
    """Named wall-clock sections with accumulated seconds and call counts."""

    def __init__(self) -> None:
        self._sections: Dict[str, Dict[str, float]] = {}

    @contextmanager
    def section(self, name: str):
        """Time a ``with`` block under ``name`` (re-entrant accumulation)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            entry = self._sections.get(name)
            if entry is None:
                entry = self._sections[name] = {"wall_s": 0.0, "calls": 0}
            entry["wall_s"] += elapsed
            entry["calls"] += 1

    def record(self, name: str, wall_s: float) -> None:
        """Attribute already-measured seconds to a section."""
        entry = self._sections.get(name)
        if entry is None:
            entry = self._sections[name] = {"wall_s": 0.0, "calls": 0}
        entry["wall_s"] += wall_s
        entry["calls"] += 1

    def wall_s(self, name: str) -> float:
        entry = self._sections.get(name)
        return entry["wall_s"] if entry else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            name: {"wall_s": entry["wall_s"], "calls": int(entry["calls"])}
            for name, entry in sorted(self._sections.items())
        }

"""In-switch collective communication model (paper Sec. IV-D, Fig. 8).

With in-switch collectives, sharded parameters are **gathered while being
loaded** (All-Gather in the switches) and **sharded while being stored**
(Reduce-Scatter in the switches).  The pipeline structure matches the
remote-memory model but the per-link loads change because data is
replicated (load) or reduced (store) as it crosses each switch level:

- remote-memory-group -> out-node switch (unchanged)::

      TX_rem2outSW = chunk / mem_side_bw

- out-node switch -> in-node switch (every node receives *all* groups'
  data — no division by the node count)::

      TX_outSW2inSW = (num_remote_groups * chunk) / gpu_side_bw

- in-node switch -> GPU (every GPU receives the fully-gathered tensor —
  no division by the GPU count)::

      TX_inSW2GPU = (num_remote_groups * num_out_switches * chunk)
                    / in_node_bw

A load request of ``W`` bytes per GPU (the GPU's shard of the parameter)
delivers the full gathered tensor ``W * num_gpus`` to every GPU while
transferring each shard over the memory-side links exactly once — this is
what replaces the explicit network All-Gather in ZeRO-style training.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.memory.api import MemoryModel, MemoryRequest
from repro.memory.remote import HierMemConfig
from repro.trace.node import TensorLocation


class InSwitchCollectiveMemory(MemoryModel):
    """Hierarchical pool with in-switch All-Gather / Reduce-Scatter.

    ``access_time_ns`` interprets ``request.size_bytes`` as the **per-GPU
    shard**; the GPU-visible result of a load is the gathered tensor of
    ``size_bytes * num_gpus`` bytes (and symmetrically a store reduces).
    """

    def __init__(self, config: HierMemConfig) -> None:
        self.config = config

    def stage_times_ns(self, chunk_bytes: int) -> Dict[str, float]:
        """Per-chunk stage times with in-switch gather/scatter (Fig. 8).

        The memory-side term uses the per-link share of the group's total
        bandwidth, as in the plain remote model.
        """
        c = self.config
        return {
            "rem2outSW": chunk_bytes / (c.mem_side_bw_gbps / c.num_out_switches),
            "outSW2inSW": (c.num_remote_groups * chunk_bytes)
            / c.gpu_side_out_bw_gbps,
            "inSW2GPU": (c.num_remote_groups * c.num_out_switches * chunk_bytes)
            / c.in_node_bw_gbps,
        }

    def effective_chunk_bytes(self, shard_bytes_per_gpu: int) -> int:
        """Transfer unit, shrunk for requests below one full pipeline beat."""
        c = self.config
        per_link = (shard_bytes_per_gpu * c.num_gpus) / (
            c.num_remote_groups * c.num_out_switches
        )
        return max(1, min(c.chunk_bytes, math.ceil(per_link)))

    def num_pipeline_stages(self, shard_bytes_per_gpu: int) -> int:
        """Chunk count down each remote-group->out-switch link.

        Identical to the plain remote model: the memory-side links still
        carry each shard exactly once.
        """
        c = self.config
        total = shard_bytes_per_gpu * c.num_gpus
        per_link = total / (c.num_remote_groups * c.num_out_switches)
        return max(1, math.ceil(per_link / self.effective_chunk_bytes(
            shard_bytes_per_gpu)))

    def access_time_ns(self, request: MemoryRequest) -> float:
        if request.location is TensorLocation.LOCAL:
            raise ValueError(
                "InSwitchCollectiveMemory models remote tensors; got LOCAL"
            )
        if request.size_bytes == 0:
            return self.config.access_latency_ns
        c = self.config
        n = self.num_pipeline_stages(request.size_bytes)
        stages = self.stage_times_ns(self.effective_chunk_bytes(request.size_bytes))
        fill = sum(stages.values())
        steady = (n - 1) * max(stages.values())
        return c.access_latency_ns + fill + steady

    def gathered_bytes(self, shard_bytes: int) -> int:
        """Size of the tensor a GPU holds after an in-switch gather-load."""
        return shard_bytes * self.config.num_gpus

    # -- in-fabric collectives ------------------------------------------------------

    def alltoall_time_ns(self, payload_bytes_per_gpu: int) -> float:
        """All-to-All routed through the pooled memory fabric.

        Each GPU injects its payload into the in-node fabric; node
        aggregates spread over the out-node switches, then the mirrored
        path delivers.  Send and receive halves pipeline, so the time is
        the fill of the four link stages at their per-stage loads.
        """
        c = self.config
        s = payload_bytes_per_gpu
        inject = s / c.in_node_bw_gbps
        uplink = (c.gpus_per_node * s) / (c.num_out_switches * c.gpu_side_out_bw_gbps)
        return c.access_latency_ns + 2 * inject + 2 * uplink

    def collective_time_ns(self, collective, payload_bytes: int) -> float:
        """Time for a collective executed in the switches (Sec. IV-D, model 3).

        All-Gather / Reduce-Scatter map directly onto the gather-load /
        scatter-store pipelines (``payload_bytes`` is the full tensor, so
        the per-GPU shard is ``payload / num_gpus``); All-Reduce is a
        scatter-store followed by a gather-load; All-to-All uses the
        fabric transpose path.
        """
        from repro.trace.node import CollectiveType, TensorLocation
        from repro.memory.api import MemoryRequest

        if payload_bytes < 0:
            raise ValueError(f"negative payload {payload_bytes}")
        if collective is CollectiveType.ALL_TO_ALL:
            return self.alltoall_time_ns(payload_bytes)
        shard = max(1, payload_bytes // self.config.num_gpus)
        request = MemoryRequest(shard, location=TensorLocation.REMOTE)
        one_pass = self.access_time_ns(request)
        if collective is CollectiveType.ALL_REDUCE:
            return 2 * one_pass
        if collective in (CollectiveType.ALL_GATHER, CollectiveType.REDUCE_SCATTER):
            return one_pass
        raise ValueError(f"unsupported fabric collective {collective!r}")

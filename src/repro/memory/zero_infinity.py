"""ZeRO-Infinity baseline memory system (paper Sec. V-B, Fig. 10).

ZeRO-Infinity is a nascent form of memory disaggregation: each GPU extends
its local HBM with **its own** CPU memory and NVMe over a dedicated path
(PCIe).  Two consequences the paper leans on:

- remote capacity is fixed per GPU — the pool cannot be resized or shared,
  so there is no utilization benefit;
- loads fetch only the GPU's *own shard*; reconstructing full parameters
  requires explicit All-Gather collectives over the NPU network, which is
  the exposed-communication bottleneck in Fig. 11.

The transfer model is a simple dedicated-link pipe: the per-GPU path
bandwidth is the remote-memory-group bandwidth (Table V gives ZeRO-Infinity
256 groups for 256 GPUs, i.e. one group per GPU).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.api import MemoryModel, MemoryRequest
from repro.trace.node import TensorLocation


@dataclass(frozen=True)
class ZeroInfinityConfig:
    """Per-GPU slow-memory path parameters.

    Attributes:
        path_bandwidth_gbps: Dedicated GPU <-> CPU-mem/NVMe bandwidth
            ("Remote Mem Group BW" row of Table V).
        access_latency_ns: Fixed latency per request (PCIe + software).
        num_gpus: System size, kept for parity checks with HierMem configs.
    """

    path_bandwidth_gbps: float = 100.0
    access_latency_ns: float = 2000.0
    num_gpus: int = 256

    def __post_init__(self) -> None:
        if self.path_bandwidth_gbps <= 0:
            raise ValueError(
                f"path_bandwidth_gbps must be positive, got {self.path_bandwidth_gbps}"
            )
        if self.access_latency_ns < 0:
            raise ValueError(
                f"access_latency_ns must be >= 0, got {self.access_latency_ns}"
            )
        if self.num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {self.num_gpus}")


class ZeroInfinityMemory(MemoryModel):
    """Dedicated-path slow memory: ``latency + size / path_bw`` per GPU."""

    # Telemetry collector slot: the class attribute opts this model into
    # Telemetry.install() attachment; None is the zero-cost fast path.
    telemetry = None

    def __init__(self, config: ZeroInfinityConfig) -> None:
        self.config = config

    def access_time_ns(self, request: MemoryRequest) -> float:
        if request.location is TensorLocation.LOCAL:
            raise ValueError("ZeroInfinityMemory models remote tensors; got LOCAL")
        telemetry = self.telemetry
        if telemetry is not None:
            direction = "store" if request.is_store else "load"
            telemetry.metrics.counter(
                "memory", "zero_infinity_offload_bytes",
                direction=direction).inc(request.size_bytes)
            telemetry.metrics.counter(
                "memory", "zero_infinity_accesses",
                direction=direction).inc()
        return (
            self.config.access_latency_ns
            + request.size_bytes / self.config.path_bandwidth_gbps
        )

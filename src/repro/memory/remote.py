"""Hierarchical disaggregated memory pool — "HierMem" (paper Sec. IV-D, Fig. 6-7).

System shape: ``num_nodes`` nodes, each with ``gpus_per_node`` GPUs behind an
in-node switch; ``num_out_switches`` out-node switches connect every node to
``num_remote_groups`` remote memory groups that collectively form a shared
pool.  A synchronous load of ``W`` bytes per GPU moves ``W * num_gpus``
bytes out of the pool, pipelined in chunk-size units through three link
stages:

- remote-memory-group -> out-node switch::

      TX_rem2outSW = chunk / mem_side_bw

- out-node switch -> in-node switch::

      TX_outSW2inSW = (num_remote_groups * chunk) / (num_nodes * gpu_side_bw)

- in-node switch -> GPU::

      TX_inSW2GPU = (num_remote_groups * num_out_switches * chunk)
                    / (num_gpus * in_node_bw)

- number of pipeline stages::

      n = (W * num_gpus) / (num_remote_groups * num_out_switches * chunk)

Total transfer time is the pipeline critical path:
``sum(stage times) + (n - 1) * max(stage times)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.memory.api import MemoryModel, MemoryRequest
from repro.trace.node import TensorLocation


@dataclass(frozen=True)
class HierMemConfig:
    """Parameters of the hierarchical pool (paper Table V nomenclature).

    Attributes:
        num_nodes: Number of compute nodes.
        gpus_per_node: GPUs behind each in-node switch.
        num_out_switches: Out-node switches (every remote group connects to
            all of them).
        num_remote_groups: Remote memory groups forming the pool.
        mem_side_bw_gbps: A remote memory group's **total** bandwidth
            ("Remote Mem Group BW" in Table V), split evenly across its
            links to the out-node switches.  This is what makes Table V's
            ZeRO-Infinity (one 100 GB/s path per GPU) and HierMem baseline
            (256 pooled 100 GB/s groups for 256 GPUs) "almost equivalent
            resources" (Sec. V-B).
        gpu_side_out_bw_gbps: Out-node-switch to node link bandwidth.
        in_node_bw_gbps: In-node pooled fabric bandwidth per GPU ("In-node
            Pooled Fabric BW" in Table V).
        chunk_bytes: Basic transfer (pipelining) unit of the fabric.
        access_latency_ns: Fixed request latency added once per access.
    """

    num_nodes: int = 16
    gpus_per_node: int = 16
    num_out_switches: int = 16
    num_remote_groups: int = 256
    mem_side_bw_gbps: float = 100.0
    gpu_side_out_bw_gbps: float = 256.0
    in_node_bw_gbps: float = 256.0
    chunk_bytes: int = 1 << 20
    access_latency_ns: float = 1000.0

    def __post_init__(self) -> None:
        for name in ("num_nodes", "gpus_per_node", "num_out_switches",
                     "num_remote_groups", "chunk_bytes"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        for name in ("mem_side_bw_gbps", "gpu_side_out_bw_gbps", "in_node_bw_gbps"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if self.access_latency_ns < 0:
            raise ValueError(
                f"access_latency_ns must be >= 0, got {self.access_latency_ns}"
            )

    @property
    def num_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node


class HierarchicalRemoteMemory(MemoryModel):
    """Remote memory model over a hierarchical pool (no in-switch compute)."""

    # Telemetry collector slot: the class attribute opts this model into
    # Telemetry.install() attachment; None is the zero-cost fast path.
    telemetry = None
    # Invariant checker slot — same opt-in contract for
    # InvariantChecker.install() (pipeline chunk-balance law).
    invariants = None

    def __init__(self, config: HierMemConfig) -> None:
        self.config = config

    # -- stage equations -------------------------------------------------------------

    def stage_times_ns(self, chunk_bytes: int) -> Dict[str, float]:
        """Per-chunk transfer time of each pipeline stage (paper equations).

        The memory-side term uses the per-link share of the group's total
        bandwidth (``mem_side_bw / num_out_switches``).
        """
        c = self.config
        return {
            "rem2outSW": chunk_bytes / (c.mem_side_bw_gbps / c.num_out_switches),
            "outSW2inSW": (c.num_remote_groups * chunk_bytes)
            / (c.num_nodes * c.gpu_side_out_bw_gbps),
            "inSW2GPU": (c.num_remote_groups * c.num_out_switches * chunk_bytes)
            / (c.num_gpus * c.in_node_bw_gbps),
        }

    def effective_chunk_bytes(self, tensor_bytes_per_gpu: int) -> int:
        """Transfer unit, shrunk for requests below one full pipeline beat."""
        c = self.config
        per_link = (tensor_bytes_per_gpu * c.num_gpus) / (
            c.num_remote_groups * c.num_out_switches
        )
        return max(1, min(c.chunk_bytes, math.ceil(per_link)))

    def num_pipeline_stages(self, tensor_bytes_per_gpu: int) -> int:
        """Chunk count flowing down each remote-group->out-switch link."""
        c = self.config
        total = tensor_bytes_per_gpu * c.num_gpus
        per_link = total / (c.num_remote_groups * c.num_out_switches)
        return max(1, math.ceil(per_link / self.effective_chunk_bytes(
            tensor_bytes_per_gpu)))

    # -- MemoryModel -------------------------------------------------------------------

    def access_time_ns(self, request: MemoryRequest) -> float:
        """Pipelined critical-path time for a synchronous pool access.

        Loads and stores are symmetric in this model (same links traversed
        in opposite directions).
        """
        if request.location is TensorLocation.LOCAL:
            raise ValueError(
                "HierarchicalRemoteMemory models remote tensors; got LOCAL"
            )
        if request.size_bytes == 0:
            return self.config.access_latency_ns
        c = self.config
        n = self.num_pipeline_stages(request.size_bytes)
        telemetry = self.telemetry
        if telemetry is not None:
            metrics = telemetry.metrics
            metrics.counter("memory", "hiermem_transfers").inc()
            metrics.counter("memory", "hiermem_pipeline_beats").inc(n)
            peak = metrics.gauge("memory", "hiermem_max_pipeline_depth")
            if n > peak.value:
                peak.set(float(n))
        # The final (possibly partial) chunk only shortens the tail; we
        # follow the paper and treat all chunks as full-size.
        stages = self.stage_times_ns(self.effective_chunk_bytes(request.size_bytes))
        fill = sum(stages.values())
        steady = (n - 1) * max(stages.values())
        total = c.access_latency_ns + fill + steady
        if self.invariants is not None:
            self.invariants.check_hiermem_access(
                self, request.size_bytes, total)
        return total

    # -- derived metrics ----------------------------------------------------------------

    def bottleneck_stage(self) -> str:
        """Name of the slowest pipeline stage at the configured chunk size."""
        stages = self.stage_times_ns(self.config.chunk_bytes)
        return max(stages, key=stages.get)

    def pool_bandwidth_gbps(self) -> float:
        """Aggregate steady-state pool bandwidth observed by all GPUs."""
        c = self.config
        per_chunk = max(self.stage_times_ns(c.chunk_bytes).values())
        # Each pipeline beat moves num_remote_groups*num_out_switches chunks.
        bytes_per_beat = c.num_remote_groups * c.num_out_switches * c.chunk_bytes
        return bytes_per_beat / per_chunk

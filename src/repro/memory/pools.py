"""Memory-pool interconnect architectures (paper Fig. 5).

The paper sketches four ways to wire a disaggregated pool: multi-level
switches, rings, meshes, and the hierarchical design of Fig. 6.  Different
designs change the per-link load and the hop count, hence the transfer
time.  :class:`~repro.memory.remote.HierarchicalRemoteMemory` implements
the hierarchical design with the paper's exact equations; this module
provides the other three as analytical variants sharing one interface so
pool architectures can be compared under identical demand.

All designs model the same synchronous access pattern: every GPU loads
``W`` bytes from a pool of ``num_remote_groups`` memory groups, and the
transfer is pipelined in ``chunk_bytes`` units.
"""

from __future__ import annotations

import abc
import math

from repro.memory.api import MemoryModel, MemoryRequest
from repro.memory.remote import HierMemConfig
from repro.trace.node import TensorLocation


class PoolDesign(MemoryModel, abc.ABC):
    """Base class for pool interconnect variants."""

    # Telemetry collector slot: the class attribute opts this model into
    # Telemetry.install() attachment; None is the zero-cost fast path.
    telemetry = None

    def __init__(self, config: HierMemConfig) -> None:
        self.config = config

    @abc.abstractmethod
    def per_chunk_beat_ns(self) -> float:
        """Steady-state time to move one pipeline beat of chunks."""

    @abc.abstractmethod
    def fill_latency_ns(self) -> float:
        """Pipeline fill time (first chunk end-to-end)."""

    def _beats(self, tensor_bytes_per_gpu: int) -> int:
        c = self.config
        total = tensor_bytes_per_gpu * c.num_gpus
        per_group = total / c.num_remote_groups
        return max(1, math.ceil(per_group / c.chunk_bytes))

    def access_time_ns(self, request: MemoryRequest) -> float:
        if request.location is TensorLocation.LOCAL:
            raise ValueError("pool designs model remote tensors; got LOCAL")
        if request.size_bytes == 0:
            return self.config.access_latency_ns
        n = self._beats(request.size_bytes)
        telemetry = self.telemetry
        if telemetry is not None:
            design = type(self).__name__
            metrics = telemetry.metrics
            metrics.counter("memory", "pool_transfers", design=design).inc()
            metrics.counter("memory", "pool_pipeline_beats",
                            design=design).inc(n)
        return (
            self.config.access_latency_ns
            + self.fill_latency_ns()
            + (n - 1) * self.per_chunk_beat_ns()
        )


class MultiLevelSwitchPool(PoolDesign):
    """A two-level switch fabric (leaf + spine) between GPUs and the pool.

    Every chunk crosses exactly two switch levels.  The leaf level is
    provisioned at the in-node fabric bandwidth, the spine at the GPU-side
    out-node bandwidth; the memory side is unchanged.  Per pipeline beat
    each memory group emits one chunk and each GPU absorbs its share.
    """

    def per_chunk_beat_ns(self) -> float:
        c = self.config
        mem_side = c.chunk_bytes / c.mem_side_bw_gbps
        spine = (c.num_remote_groups * c.chunk_bytes) / (
            c.num_nodes * c.gpu_side_out_bw_gbps
        )
        leaf = (c.num_remote_groups * c.chunk_bytes) / (
            c.num_gpus * c.in_node_bw_gbps
        )
        return max(mem_side, spine, leaf)

    def fill_latency_ns(self) -> float:
        c = self.config
        mem_side = c.chunk_bytes / c.mem_side_bw_gbps
        spine = (c.num_remote_groups * c.chunk_bytes) / (
            c.num_nodes * c.gpu_side_out_bw_gbps
        )
        leaf = (c.num_remote_groups * c.chunk_bytes) / (
            c.num_gpus * c.in_node_bw_gbps
        )
        return mem_side + spine + leaf


class RingPool(PoolDesign):
    """Memory groups and node switches arranged on a ring.

    Chunks relay through ring segments: with shortest-path routing on a
    bidirectional ring of ``R`` memory groups, the average chunk crosses
    ``R/4`` segments, multiplying the effective serialization per beat.
    Cheap to build (two links per station) but the relay factor makes it
    the worst-scaling design — the qualitative point of Fig. 5.
    """

    def _relay_factor(self) -> float:
        stations = self.config.num_remote_groups + self.config.num_nodes
        return max(1.0, stations / 4.0)

    def per_chunk_beat_ns(self) -> float:
        c = self.config
        mem_side = c.chunk_bytes * self._relay_factor() / c.mem_side_bw_gbps
        gpu_side = (c.num_remote_groups * c.chunk_bytes) / (
            c.num_gpus * c.in_node_bw_gbps
        )
        return max(mem_side, gpu_side)

    def fill_latency_ns(self) -> float:
        return self.per_chunk_beat_ns()


class MeshPool(PoolDesign):
    """Memory groups on a 2D mesh attached to node switches.

    Average hop count on a ``sqrt(R) x sqrt(R)`` mesh is ``~2/3 sqrt(R)``
    per direction; the relay factor is correspondingly gentler than the
    ring's but still grows with pool size.
    """

    def _relay_factor(self) -> float:
        stations = self.config.num_remote_groups + self.config.num_nodes
        side = math.sqrt(stations)
        return max(1.0, (2.0 / 3.0) * side)

    def per_chunk_beat_ns(self) -> float:
        c = self.config
        mem_side = c.chunk_bytes * self._relay_factor() / c.mem_side_bw_gbps
        gpu_side = (c.num_remote_groups * c.chunk_bytes) / (
            c.num_gpus * c.in_node_bw_gbps
        )
        return max(mem_side, gpu_side)

    def fill_latency_ns(self) -> float:
        return self.per_chunk_beat_ns()

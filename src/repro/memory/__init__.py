"""Memory system models (paper Sec. IV-D).

The Memory API takes a tensor's location (local vs remote), size, and the
memory-system design, and returns access time.  Provided models:

- :class:`LocalMemory` — HBM: ``latency + size / bandwidth``;
- :class:`HierarchicalRemoteMemory` — the disaggregated hierarchical pool
  of Figs. 6–7, with pipelined chunk transfers through remote-memory
  groups, out-node switches, and in-node switches;
- :class:`InSwitchCollectiveMemory` — the Fig. 8 variant where parameters
  are gathered (All-Gather) while being loaded and sharded
  (Reduce-Scatter) while being stored, inside the switches;
- :class:`ZeroInfinityMemory` — the ZeRO-Infinity baseline (Fig. 10):
  per-GPU dedicated slow paths to CPU memory / NVMe;
- the Fig. 5 pool-architecture variants in :mod:`repro.memory.pools`.
"""

from repro.memory.api import MemoryModel, MemoryRequest
from repro.memory.local import LocalMemory
from repro.memory.remote import HierMemConfig, HierarchicalRemoteMemory
from repro.memory.inswitch import InSwitchCollectiveMemory
from repro.memory.zero_infinity import ZeroInfinityConfig, ZeroInfinityMemory
from repro.memory.pools import (
    MeshPool,
    MultiLevelSwitchPool,
    PoolDesign,
    RingPool,
)

__all__ = [
    "HierMemConfig",
    "HierarchicalRemoteMemory",
    "InSwitchCollectiveMemory",
    "LocalMemory",
    "MemoryModel",
    "MemoryRequest",
    "MeshPool",
    "MultiLevelSwitchPool",
    "PoolDesign",
    "RingPool",
    "ZeroInfinityConfig",
    "ZeroInfinityMemory",
]

"""Memory API: the contract between the execution engine and memory models.

A memory model answers one question — *how long does it take to move this
tensor between an NPU and its memory system?* — given the request's size,
direction, and the system's design parameters (paper Sec. IV-D).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.trace.node import TensorLocation


@dataclass(frozen=True)
class MemoryRequest:
    """One tensor load or store.

    Attributes:
        size_bytes: Per-NPU tensor size being moved.
        is_store: Direction — True for store, False for load.
        location: LOCAL (HBM) or REMOTE (disaggregated pool).
    """

    size_bytes: int
    is_store: bool = False
    location: TensorLocation = TensorLocation.LOCAL

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative tensor size {self.size_bytes}")


class MemoryModel(abc.ABC):
    """Abstract memory-system model."""

    @abc.abstractmethod
    def access_time_ns(self, request: MemoryRequest) -> float:
        """Time in ns to complete the request (per-NPU perspective)."""

    def load_time_ns(self, size_bytes: int) -> float:
        """Convenience: time to load ``size_bytes``."""
        return self.access_time_ns(MemoryRequest(size_bytes, is_store=False))

    def store_time_ns(self, size_bytes: int) -> float:
        """Convenience: time to store ``size_bytes``."""
        return self.access_time_ns(MemoryRequest(size_bytes, is_store=True))

    def effective_bandwidth_gbps(self, size_bytes: int) -> float:
        """Achieved bandwidth for a load of the given size (GB/s)."""
        if size_bytes <= 0:
            return 0.0
        t = self.load_time_ns(size_bytes)
        return size_bytes / t if t > 0 else float("inf")

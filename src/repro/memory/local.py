"""Local HBM memory model (paper Sec. IV-D, model 1).

``access_time = access_latency + tensor_size / bandwidth`` — the simple
bandwidth model the paper uses for on-package HBM, with the latency and
bandwidth supplied as system parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.api import MemoryModel, MemoryRequest


@dataclass(frozen=True)
class LocalMemory(MemoryModel):
    """On-package HBM.

    Attributes:
        bandwidth_gbps: Sustained HBM bandwidth per NPU (GB/s).
        latency_ns: Fixed access latency per request.
    """

    bandwidth_gbps: float
    latency_ns: float = 100.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(
                f"bandwidth_gbps must be positive, got {self.bandwidth_gbps}"
            )
        if self.latency_ns < 0:
            raise ValueError(f"latency_ns must be >= 0, got {self.latency_ns}")

    def access_time_ns(self, request: MemoryRequest) -> float:
        return self.latency_ns + request.size_bytes / self.bandwidth_gbps

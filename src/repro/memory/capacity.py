"""Memory-capacity accounting: why disaggregation is needed (Sec. III-C).

"It is well known that the limited capacity of GPUs is the major
bottleneck in large-model training."  This module quantifies that: given
a model spec and a parallelization strategy, it estimates the per-NPU
memory footprint (parameters, gradients, optimizer state, activations)
and checks it against an HBM capacity, reporting how many bytes must be
offloaded to a remote pool — the input that decides whether a workload
needs :class:`~repro.memory.remote.HierarchicalRemoteMemory` or
:class:`~repro.memory.zero_infinity.ZeroInfinityMemory` at all.

Byte accounting follows the ZeRO paper's mixed-precision convention:
2 bytes/param for fp16 weights, 2 for fp16 gradients, and 12 for
optimizer state (fp32 master weights + Adam momentum + variance).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.workload.models import MoESpec, TransformerSpec
from repro.workload.parallelism import ParallelismSpec

PARAM_BYTES = 2
GRAD_BYTES = 2
OPTIMIZER_BYTES = 12
ACTIVATION_FACTOR = 12  # bytes per token per hidden unit, checkpointing off

GiB = 1 << 30


@dataclass(frozen=True)
class MemoryFootprint:
    """Per-NPU memory demand in bytes."""

    params: int
    grads: int
    optimizer: int
    activations: int

    @property
    def total(self) -> int:
        return self.params + self.grads + self.optimizer + self.activations

    @property
    def model_state(self) -> int:
        """Params + grads + optimizer — what ZeRO partitions/offloads."""
        return self.params + self.grads + self.optimizer

    def __str__(self) -> str:
        return (
            f"params {self.params / GiB:.1f} GiB + grads "
            f"{self.grads / GiB:.1f} + optimizer {self.optimizer / GiB:.1f} "
            f"+ activations {self.activations / GiB:.1f} "
            f"= {self.total / GiB:.1f} GiB"
        )


@dataclass(frozen=True)
class CapacityReport:
    """Outcome of checking a footprint against an HBM capacity."""

    footprint: MemoryFootprint
    hbm_bytes: int

    @property
    def fits(self) -> bool:
        return self.footprint.total <= self.hbm_bytes

    @property
    def offload_bytes(self) -> int:
        """Model-state bytes that must live remotely for the rest to fit.

        Activations have to stay local; if they alone exceed HBM the
        configuration is infeasible regardless of offload.
        """
        spill = self.footprint.total - self.hbm_bytes
        return max(0, min(spill, self.footprint.model_state))

    @property
    def feasible_with_offload(self) -> bool:
        return self.footprint.activations <= self.hbm_bytes


def transformer_footprint(
    model: TransformerSpec,
    spec: ParallelismSpec,
    zero_stage: int = 0,
) -> MemoryFootprint:
    """Per-NPU footprint of a dense transformer under MP x PP x DP.

    ``zero_stage`` partitions model state across the DP degree:
    1 = optimizer state, 2 = +gradients, 3 = +parameters (FSDP).
    """
    if not 0 <= zero_stage <= 3:
        raise ValueError(f"zero_stage must be 0..3, got {zero_stage}")
    shard = spec.mp * spec.pp
    params_per_npu = model.total_params // shard
    dp = spec.dp

    params = params_per_npu * PARAM_BYTES
    grads = params_per_npu * GRAD_BYTES
    optimizer = params_per_npu * OPTIMIZER_BYTES
    if zero_stage >= 1:
        optimizer //= dp
    if zero_stage >= 2:
        grads //= dp
    if zero_stage >= 3:
        params //= dp

    tokens = model.batch_per_replica * model.seq_len
    layers_per_npu = max(1, model.num_layers // spec.pp)
    activations = (
        layers_per_npu * tokens * model.hidden * ACTIVATION_FACTOR // spec.mp
    )
    return MemoryFootprint(params, grads, optimizer, activations)


def moe_footprint(
    model: MoESpec,
    num_gpus: int,
    zero_stage: int = 3,
) -> MemoryFootprint:
    """Per-GPU footprint of an expert-parallel MoE model.

    Experts shard naturally across GPUs (expert parallelism); dense
    parameters follow the given ZeRO stage across all GPUs.
    """
    if num_gpus < 1:
        raise ValueError(f"num_gpus must be >= 1, got {num_gpus}")
    expert_params = model.num_moe_layers * model.expert_params_per_gpu(num_gpus)
    dense_params = model.dense_params
    if zero_stage >= 3:
        dense_params //= num_gpus
    params_per_gpu = expert_params + dense_params

    params = params_per_gpu * PARAM_BYTES
    grads = params_per_gpu * GRAD_BYTES
    optimizer = params_per_gpu * OPTIMIZER_BYTES
    if zero_stage >= 1 and zero_stage < 3:
        optimizer //= num_gpus

    tokens = model.tokens_per_gpu()
    activations = model.num_layers * tokens * model.hidden * ACTIVATION_FACTOR
    return MemoryFootprint(params, grads, optimizer, activations)


def check_capacity(
    footprint: MemoryFootprint, hbm_gib: float
) -> CapacityReport:
    """Check a footprint against an HBM capacity given in GiB."""
    if hbm_gib <= 0:
        raise ValueError(f"hbm_gib must be positive, got {hbm_gib}")
    return CapacityReport(footprint=footprint, hbm_bytes=int(hbm_gib * GiB))

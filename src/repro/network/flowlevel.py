"""Flow-level network backend with max-min fair bandwidth sharing.

The third point on the fidelity/speed spectrum, standing in for the
astra-sim + ns3 coupling the paper cites ([12]): messages are *flows*
that share link capacity under progressive-filling (max-min) fairness,
re-solved whenever a flow starts or finishes.  Unlike the analytical
backend (no cross-flow contention beyond ports) and Garnet-lite (per
packet, expensive), the flow model captures time-varying rates — a flow
slows down when a competitor joins mid-transfer and speeds back up when
it leaves — at one event per rate change instead of one per packet-hop.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.events import EventEngine
from repro.events.engine import Event
from repro.network.api import Message, NetworkBackend
from repro.network.linkgraph import LazyLinkGraph, dimension_order_route
from repro.network.topology import MultiDimTopology, TopologyError


class _FlowLink:
    """A directed link: capacity shared by the flows crossing it."""

    __slots__ = ("capacity", "latency_ns", "flows", "key")

    def __init__(self, bandwidth_gbps: float, latency_ns: float) -> None:
        self.capacity = bandwidth_gbps  # GB/s == bytes/ns
        self.latency_ns = latency_ns
        # Insertion-ordered (dict-as-set): _Flow objects hash by identity,
        # so a plain set would iterate in allocator-dependent order and
        # same-timestamp completions would drain nondeterministically.
        self.flows: Dict["_Flow", None] = {}
        # Graph key, filled in by backends that need to name links in
        # telemetry (the lazy graph's on_create hook sets it).
        self.key = None


class _Flow:
    """One in-flight message (or one packet-granularity sub-flow)."""

    __slots__ = ("message", "on_sent", "links", "size", "remaining", "rate",
                 "prop_latency_ns", "finish_threshold", "group")

    def __init__(self, message: Message, on_sent: Optional[Callable[[], None]],
                 links: List[_FlowLink], size_bytes: Optional[int] = None,
                 group: Optional["_SubFlowGroup"] = None) -> None:
        self.message = message
        self.on_sent = on_sent
        self.links = links
        self.size = float(max(
            1, message.size_bytes if size_bytes is None else size_bytes))
        self.remaining = self.size
        self.rate = 0.0
        self.prop_latency_ns = sum(link.latency_ns for link in links)
        # Rate * time accumulates relative float error; declare the flow
        # done once the residue is negligible for its size, or the
        # scheduler grinds through microscopic remainders forever.
        self.finish_threshold = max(1e-6, 1e-9 * self.remaining)
        self.group = group

    @property
    def finished(self) -> bool:
        return self.remaining <= self.finish_threshold


class _SubFlowGroup:
    """An escalated message: packet-granularity sub-flows run in sequence.

    HyGra-style fidelity escalation (see
    :class:`FlowLevelNetwork`): on a contended route the fluid
    approximation is replaced by store-and-forward packet segments, so
    rate changes are resolved at packet rather than message granularity.
    The message delivers when its last segment finishes.
    """

    __slots__ = ("message", "on_sent", "links", "sizes", "next_idx")

    def __init__(self, message: Message, on_sent: Optional[Callable[[], None]],
                 links: List[_FlowLink], sizes: List[int]) -> None:
        self.message = message
        self.on_sent = on_sent
        self.links = links
        self.sizes = sizes
        self.next_idx = 0


class FlowLevelNetwork(NetworkBackend):
    """Max-min fair flow simulation over the explicit link graph.

    On every flow arrival/departure the rate allocation is re-solved with
    progressive filling: repeatedly saturate the most-constrained link
    (fair share = residual capacity / unfrozen flows), freeze its flows
    at that rate, and continue.  Between events every flow progresses
    linearly at its rate, so only the earliest completion needs an event.

    Granularity escalation (the static opt-in that used to live here as
    ``escalation_threshold``) moved to the runtime controller in
    :class:`repro.network.adaptive.AdaptiveFlowNetwork`, which subclasses
    this backend and shares its :class:`_SubFlowGroup` handoff protocol.

    Args:
        engine: The shared event engine.
        topology: Physical topology, expanded into the explicit link graph.
    """

    def __init__(
        self,
        engine: EventEngine,
        topology: MultiDimTopology,
    ) -> None:
        super().__init__(engine, topology)
        # Links materialize on first touch (LazyLinkGraph); construction
        # cost is independent of topology size.
        self._links = LazyLinkGraph(topology, lambda bw, lat: _FlowLink(bw, lat))
        # Insertion-ordered for deterministic drain order (see _FlowLink).
        self._flows: Dict[_Flow, None] = {}
        self._last_update = 0.0
        self._completion_event: Optional[Event] = None
        self.rate_recomputations = 0
        self.granularity_escalations = 0
        # (src, dest) -> per-hop links; routes are pure topology functions.
        self._path_cache: Dict[Tuple[int, int], List[_FlowLink]] = {}

    # -- NetworkBackend -----------------------------------------------------------

    def _link_path(self, src: int, dest: int) -> List[_FlowLink]:
        cached = self._path_cache.get((src, dest))
        if cached is not None:
            return cached
        path = dimension_order_route(self.topology, src, dest)
        if len(path) < 2:
            raise TopologyError(f"no route from {src} to {dest}")
        links = []
        for a, b in zip(path, path[1:]):
            link = self._links.get((a, b))
            if link is None:
                raise TopologyError(f"missing link {a!r} -> {b!r}")
            links.append(link)
        self._path_cache[(src, dest)] = links
        return links

    def _transmit(self, message: Message, on_sent: Optional[Callable[[], None]]) -> None:
        links = self._link_path(message.src, message.dest)
        self._advance_to_now()
        flow = _Flow(message, on_sent, links)
        self._flows[flow] = None
        for link in links:
            link.flows[flow] = None
        self._reallocate()

    def _launch_next_subflow(self, group: _SubFlowGroup) -> None:
        size = group.sizes[group.next_idx]
        group.next_idx += 1
        sub = _Flow(group.message, None, group.links,
                    size_bytes=size, group=group)
        self._flows[sub] = None
        for link in group.links:
            link.flows[sub] = None

    # -- fluid dynamics -----------------------------------------------------------

    def _advance_to_now(self) -> None:
        """Drain progress linearly since the last rate change."""
        elapsed = self.engine.now - self._last_update
        if elapsed > 0:
            for flow in self._flows:
                flow.remaining = max(0.0, flow.remaining - flow.rate * elapsed)
        self._last_update = self.engine.now

    def _reallocate(self) -> None:
        """Progressive-filling max-min allocation, then reschedule."""
        self.rate_recomputations += 1
        unfrozen: Dict[_Flow, None] = dict.fromkeys(self._flows)
        # Only links currently carrying flows can constrain the
        # allocation; skipping idle links keeps each filling round
        # O(active links) on large topologies (max-min rates are unique,
        # so the restriction cannot change the result).
        residual: Dict[int, float] = {
            id(link): link.capacity
            for link in self._links.values() if link.flows
        }
        link_objects: Dict[int, _FlowLink] = {
            id(link): link for link in self._links.values() if link.flows
        }
        while unfrozen:
            # Most-constrained link among those carrying unfrozen flows.
            best_share = None
            best_link_id = None
            for link_id, link in link_objects.items():
                active = [f for f in link.flows if f in unfrozen]
                if not active:
                    continue
                share = residual[link_id] / len(active)
                if best_share is None or share < best_share:
                    best_share = share
                    best_link_id = link_id
            if best_link_id is None:
                break
            bottleneck = link_objects[best_link_id]
            for flow in [f for f in bottleneck.flows if f in unfrozen]:
                flow.rate = best_share
                unfrozen.pop(flow, None)
                for link in flow.links:
                    residual[id(link)] = max(
                        0.0, residual[id(link)] - best_share)
        if self.invariants is not None:
            self.invariants.check_flow_rates(
                link_objects.values(), self.engine.now)
        self._schedule_next_completion()

    def _schedule_next_completion(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        soonest = None
        for flow in self._flows:
            if flow.rate <= 0:
                continue
            eta = flow.remaining / flow.rate
            if soonest is None or eta < soonest:
                soonest = eta
        if soonest is not None:
            self._completion_event = self.engine.schedule(
                soonest, self._complete_due_flows)

    def _complete_due_flows(self) -> List[_Flow]:
        self._completion_event = None
        self._advance_to_now()
        finished = [f for f in self._flows if f.finished]
        for flow in finished:
            self._flows.pop(flow, None)
            for link in flow.links:
                link.flows.pop(flow, None)
            group = flow.group
            if group is not None:
                if group.next_idx < len(group.sizes):
                    self._launch_next_subflow(group)
                else:
                    if group.on_sent is not None:
                        group.on_sent()
                    self._record_flow_span(group.message)
                    self.engine.schedule(flow.prop_latency_ns, self._deliver,
                                         group.message)
                continue
            if flow.on_sent is not None:
                flow.on_sent()
            self._record_flow_span(flow.message)
            self.engine.schedule(flow.prop_latency_ns, self._deliver,
                                 flow.message)
        self._reallocate()
        return finished

    # -- introspection ------------------------------------------------------------

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def link_count(self) -> int:
        """Physical links in the topology (closed form; lazy graph)."""
        return self._links.total_count()

    # -- telemetry ----------------------------------------------------------------

    def _record_flow_span(self, message: Message) -> None:
        """One span per fully-serialized message on a shared flow track."""
        telemetry = self.telemetry
        if telemetry is not None and telemetry.chunk_spans:
            telemetry.spans.add(
                "flows", f"{message.src}->{message.dest}", "flow",
                message.send_time, self.engine.now,
                {"size_bytes": message.size_bytes})

    def telemetry_sample(self, telemetry, now: float) -> None:
        """Sample concurrency: flows in flight drive solver cost."""
        super().telemetry_sample(telemetry, now)
        telemetry.metrics.gauge("network", "active_flows").sample(
            now, len(self._flows))

    def telemetry_finalize(self, telemetry, total_ns: float) -> None:
        """Solver iterations and fidelity escalations (HyGra-style)."""
        super().telemetry_finalize(telemetry, total_ns)
        metrics = telemetry.metrics
        metrics.counter("network", "solver_iterations").value = float(
            self.rate_recomputations)
        metrics.counter("network", "granularity_escalations").value = float(
            self.granularity_escalations)
        metrics.counter("network", "links_total").value = float(
            self._links.total_count())

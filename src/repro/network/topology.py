"""Multi-dimensional topology representation and string-notation parser.

A topology is an ordered stack of dimensions (paper Fig. 3b).  Dimension 1
(index 0 here) is the innermost/fastest network — on-chip or on-wafer — and
the last dimension is the scale-out network.  NPU ids map to mixed-radix
coordinates with **dimension 0 varying fastest**, so NPUs 0..k1-1 share a
dim-0 group, matching the paper's placement convention.

The string notation mirrors the paper: ``"Ring(4)_FC(2)_Switch(8)"`` with
per-dimension bandwidths supplied separately (``"250_200_100"`` GB/s style)
or inline via :func:`parse_topology`'s ``bandwidths_gbps`` argument.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.network.building_blocks import (
    BuildingBlock,
    block_from_name,
    hops_between,
    links_per_npu,
)


class TopologyError(ValueError):
    """Raised for malformed topology descriptions or invalid NPU ids."""


class CoordinateError(TopologyError):
    """A coordinate fell outside its dimension's valid range.

    Structured variant of :class:`TopologyError` raised by
    :meth:`MultiDimTopology.npu_id`: carries which dimension rejected the
    coordinate, the offending value, and the dimension's size, so callers
    (and error messages) can say exactly *which* axis was wrong instead of
    silently wrapping modulo the dimension size.
    """

    def __init__(self, dim_index: int, coordinate: int, size: int) -> None:
        self.dim_index = dim_index
        self.coordinate = coordinate
        self.size = size
        super().__init__(
            f"coordinate {coordinate} out of range for dimension "
            f"{dim_index} (size {size}; valid range 0..{size - 1})"
        )


@dataclass(frozen=True)
class DimSpec:
    """One dimension of a hierarchical topology.

    Attributes:
        block: Building-block type of this dimension.
        size: Number of NPUs (or groups) connected at this level; >= 1.
        bandwidth_gbps: Per-NPU aggregate injection bandwidth into this
            dimension, in GB/s (1 GB = 1e9 bytes, so numerically equal to
            bytes/ns).
        latency_ns: Per-hop link latency in nanoseconds.
        oversubscription: Fabric oversubscription ratio (>= 1).  The
            dimension's shared fabric carries at most
            ``size * bandwidth / oversubscription`` bytes/ns in aggregate;
            at 1.0 (the default) the fabric is non-blocking and the
            analytical model reduces to the paper's congestion-free
            equation.  Values > 1 enable the first-order congestion model
            the paper lists as future work (Sec. IV-C, footnote 5).
    """

    block: BuildingBlock
    size: int
    bandwidth_gbps: float
    latency_ns: float = 500.0
    oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if self.size < 1:
            raise TopologyError(f"dimension size must be >= 1, got {self.size}")
        if self.bandwidth_gbps <= 0:
            raise TopologyError(
                f"bandwidth must be positive, got {self.bandwidth_gbps}"
            )
        if self.latency_ns < 0:
            raise TopologyError(f"latency must be >= 0, got {self.latency_ns}")
        if self.oversubscription < 1.0:
            raise TopologyError(
                f"oversubscription must be >= 1, got {self.oversubscription}"
            )

    @property
    def fabric_bandwidth_gbps(self) -> float:
        """Aggregate bytes/ns the dimension's shared fabric can carry."""
        return self.size * self.bandwidth_gbps / self.oversubscription


class MultiDimTopology:
    """An ordered stack of :class:`DimSpec` dimensions.

    Provides id<->coordinate mapping, per-dimension group computation, hop
    counts, and aggregate properties used by the collective scheduler.
    """

    def __init__(self, dims: Sequence[DimSpec], name: str = "") -> None:
        if not dims:
            raise TopologyError("topology needs at least one dimension")
        self.dims: Tuple[DimSpec, ...] = tuple(dims)
        self.name = name or self.notation()
        self._strides: List[int] = []
        stride = 1
        for dim in self.dims:
            self._strides.append(stride)
            stride *= dim.size
        self._num_npus = stride
        # coords() is called on every transfer by every backend; the
        # mixed-radix decomposition is pure, so memoise per NPU id.
        self._coords_cache: dict = {}

    # -- basic properties ---------------------------------------------------------

    @property
    def num_dims(self) -> int:
        return len(self.dims)

    @property
    def num_npus(self) -> int:
        return self._num_npus

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(d.size for d in self.dims)

    def total_bandwidth_gbps(self) -> float:
        """Aggregate injection bandwidth per NPU across all dimensions."""
        return sum(d.bandwidth_gbps for d in self.dims if d.size > 1)

    def notation(self) -> str:
        """Paper-style shape string, e.g. ``Ring(4)_FC(2)_Switch(8)``."""
        short = {
            BuildingBlock.RING: "Ring",
            BuildingBlock.FULLY_CONNECTED: "FC",
            BuildingBlock.SWITCH: "Switch",
        }
        return "_".join(f"{short[d.block]}({d.size})" for d in self.dims)

    # -- coordinates ----------------------------------------------------------------

    def coords(self, npu_id: int) -> Tuple[int, ...]:
        """Mixed-radix coordinates of an NPU (dim 0 varies fastest)."""
        cached = self._coords_cache.get(npu_id)
        if cached is None:
            self._check_id(npu_id)
            out = []
            rest = npu_id
            for dim in self.dims:
                out.append(rest % dim.size)
                rest //= dim.size
            cached = self._coords_cache[npu_id] = tuple(out)
        return cached

    def npu_id(self, coords: Sequence[int]) -> int:
        """Inverse of :meth:`coords`.

        Raises :class:`CoordinateError` (naming the offending dimension,
        coordinate, and valid range) when any coordinate is negative or
        at least its dimension's size — out-of-range coordinates never
        wrap around.
        """
        if len(coords) != self.num_dims:
            raise TopologyError(
                f"expected {self.num_dims} coordinates, got {len(coords)}"
            )
        npu = 0
        for i, (c, dim, stride) in enumerate(
                zip(coords, self.dims, self._strides)):
            if not (0 <= c < dim.size):
                raise CoordinateError(i, c, dim.size)
            npu += c * stride
        return npu

    def _check_id(self, npu_id: int) -> None:
        if not (0 <= npu_id < self._num_npus):
            raise TopologyError(
                f"NPU id {npu_id} out of range for {self._num_npus}-NPU topology"
            )

    # -- groups and hops --------------------------------------------------------------

    def group_rep(self, npu_id: int, dims: Iterable[int]) -> int:
        """Lowest member id of ``npu_id``'s communicator over ``dims``.

        Closed form (coordinates over ``dims`` zeroed via stride
        arithmetic): O(len(dims)), independent of the group size.
        """
        self._check_id(npu_id)
        rep = npu_id
        for d in set(dims):
            self._check_dim(d)
            stride = self._strides[d]
            rep -= ((npu_id // stride) % self.dims[d].size) * stride
        return rep

    def group_size(self, dims: Iterable[int]) -> int:
        """Member count of a communicator spanning ``dims`` (closed form)."""
        size = 1
        for d in set(dims):
            self._check_dim(d)
            size *= self.dims[d].size
        return size

    def comm_group(self, npu_id: int, dims: Iterable[int]) -> "CommGroup":
        """Symbolic communicator of ``npu_id`` across ``dims``.

        Unlike :meth:`group_across_dims` this never materializes the
        member list: representative, size, and membership tests are all
        closed-form stride arithmetic, so issuing a collective over a
        million-NPU dimension costs O(num_dims), not O(num_npus).
        ``members()`` still materializes on demand for consumers that
        genuinely need every id (the packet backends' send/recv lowering).
        """
        dim_list = tuple(sorted(set(dims)))
        for d in dim_list:
            self._check_dim(d)
        return CommGroup(self, dim_list, self.group_rep(npu_id, dim_list))

    def dim_group(self, npu_id: int, dim: int) -> Tuple[int, ...]:
        """All NPUs sharing every coordinate with ``npu_id`` except dim ``dim``."""
        self._check_dim(dim)
        base = list(self.coords(npu_id))
        group = []
        for i in range(self.dims[dim].size):
            base[dim] = i
            group.append(self.npu_id(base))
        return tuple(group)

    def group_across_dims(self, npu_id: int, dims: Iterable[int]) -> Tuple[int, ...]:
        """All NPUs reachable from ``npu_id`` by varying the given dims.

        This is the communicator of a collective spanning those dimensions
        (e.g. an MP group spanning dims (0, 1)), fully materialized.  The
        simulation hot path uses the symbolic :meth:`comm_group` instead;
        this remains for callers that genuinely need every member id.
        """
        return self.comm_group(npu_id, dims).members()

    def hops(self, src: int, dst: int) -> int:
        """Total hop count between two NPUs (dimension-order routing)."""
        self._check_id(src)
        self._check_id(dst)
        a, b = self.coords(src), self.coords(dst)
        total = 0
        for dim, (ca, cb) in zip(self.dims, zip(a, b)):
            total += hops_between(dim.block, dim.size, ca, cb)
        return total

    def shared_dim(self, src: int, dst: int) -> int:
        """The single dimension along which two NPUs differ.

        Raises :class:`TopologyError` if they differ in zero or more than
        one dimension; used to map point-to-point traffic to a port.
        """
        a, b = self.coords(src), self.coords(dst)
        diffs = [i for i, (ca, cb) in enumerate(zip(a, b)) if ca != cb]
        if len(diffs) != 1:
            raise TopologyError(
                f"NPUs {src} and {dst} differ in {len(diffs)} dimensions; "
                "expected exactly one for single-dim routing"
            )
        return diffs[0]

    def total_links(self) -> int:
        """Total number of physical NPU-side links in the system."""
        total = 0
        for dim in self.dims:
            groups = self._num_npus // dim.size
            total += groups * dim.size * links_per_npu(dim.block, dim.size)
        return total

    def _check_dim(self, dim: int) -> None:
        if not (0 <= dim < self.num_dims):
            raise TopologyError(
                f"dimension {dim} out of range for {self.num_dims}-D topology"
            )

    def __repr__(self) -> str:
        bws = "_".join(f"{d.bandwidth_gbps:g}" for d in self.dims)
        return f"MultiDimTopology({self.notation()}, bw={bws} GB/s)"


class CommGroup:
    """A communicator held symbolically as a coordinate lattice.

    The group is ``{ npu : coords(npu)[d] == coords(rep)[d] for every
    dimension d NOT in dims }`` — i.e. all NPUs reachable from ``rep`` by
    varying the given dimensions.  Representative, size, hashing, and
    membership tests are all closed-form stride arithmetic, so building
    and comparing communicators is O(num_dims) regardless of how many
    NPUs the group spans.  :meth:`members` materializes the sorted member
    tuple on demand (identical to
    :meth:`MultiDimTopology.group_across_dims`) for the few consumers
    that need explicit ids, e.g. the packet backends' send/recv lowering.

    Instances hash and compare by ``(rep, dims, size)`` — two groups over
    the same topology are equal iff they contain the same NPUs.  They do
    NOT compare equal to plain member tuples; code mixing symbolic and
    explicit groups for the *same* rendezvous must normalize first.
    """

    __slots__ = ("topology", "dims", "rep", "size", "_members", "_hash")

    def __init__(self, topology: MultiDimTopology, dims: Tuple[int, ...],
                 rep: int) -> None:
        self.topology = topology
        self.dims = dims
        self.rep = rep
        self.size = topology.group_size(dims)
        self._members: Tuple[int, ...] = ()
        self._hash = hash((rep, dims, self.size))

    def __len__(self) -> int:
        return self.size

    def __contains__(self, npu: object) -> bool:
        if not isinstance(npu, int) or not (0 <= npu < self.topology.num_npus):
            return False
        topo = self.topology
        rep = self.rep
        for d in range(topo.num_dims):
            if d in self.dims:
                continue
            stride = topo._strides[d]
            if (npu // stride) % topo.dims[d].size != \
                    (rep // stride) % topo.dims[d].size:
                return False
        return True

    def members(self) -> Tuple[int, ...]:
        """Materialized, sorted member ids (cached after first call)."""
        cached = self._members
        if not cached:
            topo = self.topology
            offsets = [0]
            for d in self.dims:
                stride = topo._strides[d]
                offsets = [
                    off + v * stride
                    for v in range(topo.dims[d].size)
                    for off in offsets
                ]
            cached = self._members = tuple(
                sorted(self.rep + off for off in offsets))
        return cached

    def __iter__(self):
        return iter(self.members())

    def intersection(self, ids: Iterable[int]) -> "set[int]":
        """Members present in ``ids`` — O(len(ids) * num_dims), no
        materialization of the group itself."""
        return {i for i in ids if i in self}

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommGroup):
            return NotImplemented
        return (self.rep == other.rep and self.dims == other.dims
                and self.size == other.size)

    def __repr__(self) -> str:
        return f"CommGroup(rep={self.rep}, dims={self.dims}, size={self.size})"


_DIM_RE = re.compile(r"^\s*([A-Za-z]+)\s*\(\s*(\d+)\s*\)\s*$")


def parse_topology(
    notation: str,
    bandwidths_gbps: Sequence[float],
    latencies_ns: Sequence[float] = (),
    name: str = "",
) -> MultiDimTopology:
    """Build a topology from paper-style notation.

    Example::

        parse_topology("Ring(16)_FC(8)_Switch(4)", [200, 100, 50])

    ``latencies_ns`` defaults to 500 ns per dimension when omitted.
    """
    parts = [p for p in notation.split("_") if p.strip()]
    if not parts:
        raise TopologyError(f"empty topology notation {notation!r}")
    if len(bandwidths_gbps) != len(parts):
        raise TopologyError(
            f"{len(parts)} dimensions in {notation!r} but "
            f"{len(bandwidths_gbps)} bandwidths given"
        )
    if latencies_ns and len(latencies_ns) != len(parts):
        raise TopologyError(
            f"{len(parts)} dimensions in {notation!r} but "
            f"{len(latencies_ns)} latencies given"
        )
    dims = []
    for i, part in enumerate(parts):
        match = _DIM_RE.match(part)
        if not match:
            raise TopologyError(f"malformed dimension {part!r} in {notation!r}")
        block = block_from_name(match.group(1))
        size = int(match.group(2))
        latency = latencies_ns[i] if latencies_ns else 500.0
        dims.append(
            DimSpec(
                block=block,
                size=size,
                bandwidth_gbps=float(bandwidths_gbps[i]),
                latency_ns=latency,
            )
        )
    return MultiDimTopology(dims, name=name)

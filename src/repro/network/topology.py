"""Multi-dimensional topology representation and string-notation parser.

A topology is an ordered stack of dimensions (paper Fig. 3b).  Dimension 1
(index 0 here) is the innermost/fastest network — on-chip or on-wafer — and
the last dimension is the scale-out network.  NPU ids map to mixed-radix
coordinates with **dimension 0 varying fastest**, so NPUs 0..k1-1 share a
dim-0 group, matching the paper's placement convention.

The string notation mirrors the paper: ``"Ring(4)_FC(2)_Switch(8)"`` with
per-dimension bandwidths supplied separately (``"250_200_100"`` GB/s style)
or inline via :func:`parse_topology`'s ``bandwidths_gbps`` argument.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.network.building_blocks import (
    BuildingBlock,
    block_from_name,
    hops_between,
    links_per_npu,
)


class TopologyError(ValueError):
    """Raised for malformed topology descriptions or invalid NPU ids."""


@dataclass(frozen=True)
class DimSpec:
    """One dimension of a hierarchical topology.

    Attributes:
        block: Building-block type of this dimension.
        size: Number of NPUs (or groups) connected at this level; >= 1.
        bandwidth_gbps: Per-NPU aggregate injection bandwidth into this
            dimension, in GB/s (1 GB = 1e9 bytes, so numerically equal to
            bytes/ns).
        latency_ns: Per-hop link latency in nanoseconds.
        oversubscription: Fabric oversubscription ratio (>= 1).  The
            dimension's shared fabric carries at most
            ``size * bandwidth / oversubscription`` bytes/ns in aggregate;
            at 1.0 (the default) the fabric is non-blocking and the
            analytical model reduces to the paper's congestion-free
            equation.  Values > 1 enable the first-order congestion model
            the paper lists as future work (Sec. IV-C, footnote 5).
    """

    block: BuildingBlock
    size: int
    bandwidth_gbps: float
    latency_ns: float = 500.0
    oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if self.size < 1:
            raise TopologyError(f"dimension size must be >= 1, got {self.size}")
        if self.bandwidth_gbps <= 0:
            raise TopologyError(
                f"bandwidth must be positive, got {self.bandwidth_gbps}"
            )
        if self.latency_ns < 0:
            raise TopologyError(f"latency must be >= 0, got {self.latency_ns}")
        if self.oversubscription < 1.0:
            raise TopologyError(
                f"oversubscription must be >= 1, got {self.oversubscription}"
            )

    @property
    def fabric_bandwidth_gbps(self) -> float:
        """Aggregate bytes/ns the dimension's shared fabric can carry."""
        return self.size * self.bandwidth_gbps / self.oversubscription


class MultiDimTopology:
    """An ordered stack of :class:`DimSpec` dimensions.

    Provides id<->coordinate mapping, per-dimension group computation, hop
    counts, and aggregate properties used by the collective scheduler.
    """

    def __init__(self, dims: Sequence[DimSpec], name: str = "") -> None:
        if not dims:
            raise TopologyError("topology needs at least one dimension")
        self.dims: Tuple[DimSpec, ...] = tuple(dims)
        self.name = name or self.notation()
        self._strides: List[int] = []
        stride = 1
        for dim in self.dims:
            self._strides.append(stride)
            stride *= dim.size
        self._num_npus = stride
        # coords() is called on every transfer by every backend; the
        # mixed-radix decomposition is pure, so memoise per NPU id.
        self._coords_cache: dict = {}

    # -- basic properties ---------------------------------------------------------

    @property
    def num_dims(self) -> int:
        return len(self.dims)

    @property
    def num_npus(self) -> int:
        return self._num_npus

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(d.size for d in self.dims)

    def total_bandwidth_gbps(self) -> float:
        """Aggregate injection bandwidth per NPU across all dimensions."""
        return sum(d.bandwidth_gbps for d in self.dims if d.size > 1)

    def notation(self) -> str:
        """Paper-style shape string, e.g. ``Ring(4)_FC(2)_Switch(8)``."""
        short = {
            BuildingBlock.RING: "Ring",
            BuildingBlock.FULLY_CONNECTED: "FC",
            BuildingBlock.SWITCH: "Switch",
        }
        return "_".join(f"{short[d.block]}({d.size})" for d in self.dims)

    # -- coordinates ----------------------------------------------------------------

    def coords(self, npu_id: int) -> Tuple[int, ...]:
        """Mixed-radix coordinates of an NPU (dim 0 varies fastest)."""
        cached = self._coords_cache.get(npu_id)
        if cached is None:
            self._check_id(npu_id)
            out = []
            rest = npu_id
            for dim in self.dims:
                out.append(rest % dim.size)
                rest //= dim.size
            cached = self._coords_cache[npu_id] = tuple(out)
        return cached

    def npu_id(self, coords: Sequence[int]) -> int:
        """Inverse of :meth:`coords`."""
        if len(coords) != self.num_dims:
            raise TopologyError(
                f"expected {self.num_dims} coordinates, got {len(coords)}"
            )
        npu = 0
        for c, dim, stride in zip(coords, self.dims, self._strides):
            if not (0 <= c < dim.size):
                raise TopologyError(f"coordinate {c} out of range for {dim}")
            npu += c * stride
        return npu

    def _check_id(self, npu_id: int) -> None:
        if not (0 <= npu_id < self._num_npus):
            raise TopologyError(
                f"NPU id {npu_id} out of range for {self._num_npus}-NPU topology"
            )

    # -- groups and hops --------------------------------------------------------------

    def dim_group(self, npu_id: int, dim: int) -> Tuple[int, ...]:
        """All NPUs sharing every coordinate with ``npu_id`` except dim ``dim``."""
        self._check_dim(dim)
        base = list(self.coords(npu_id))
        group = []
        for i in range(self.dims[dim].size):
            base[dim] = i
            group.append(self.npu_id(base))
        return tuple(group)

    def group_across_dims(self, npu_id: int, dims: Iterable[int]) -> Tuple[int, ...]:
        """All NPUs reachable from ``npu_id`` by varying the given dims.

        This is the communicator of a collective spanning those dimensions
        (e.g. an MP group spanning dims (0, 1)).
        """
        dim_list = sorted(set(dims))
        for d in dim_list:
            self._check_dim(d)
        base = list(self.coords(npu_id))
        members: List[int] = []

        def expand(idx: int) -> None:
            if idx == len(dim_list):
                members.append(self.npu_id(base))
                return
            d = dim_list[idx]
            original = base[d]
            for v in range(self.dims[d].size):
                base[d] = v
                expand(idx + 1)
            base[d] = original

        expand(0)
        return tuple(sorted(members))

    def hops(self, src: int, dst: int) -> int:
        """Total hop count between two NPUs (dimension-order routing)."""
        self._check_id(src)
        self._check_id(dst)
        a, b = self.coords(src), self.coords(dst)
        total = 0
        for dim, (ca, cb) in zip(self.dims, zip(a, b)):
            total += hops_between(dim.block, dim.size, ca, cb)
        return total

    def shared_dim(self, src: int, dst: int) -> int:
        """The single dimension along which two NPUs differ.

        Raises :class:`TopologyError` if they differ in zero or more than
        one dimension; used to map point-to-point traffic to a port.
        """
        a, b = self.coords(src), self.coords(dst)
        diffs = [i for i, (ca, cb) in enumerate(zip(a, b)) if ca != cb]
        if len(diffs) != 1:
            raise TopologyError(
                f"NPUs {src} and {dst} differ in {len(diffs)} dimensions; "
                "expected exactly one for single-dim routing"
            )
        return diffs[0]

    def total_links(self) -> int:
        """Total number of physical NPU-side links in the system."""
        total = 0
        for dim in self.dims:
            groups = self._num_npus // dim.size
            total += groups * dim.size * links_per_npu(dim.block, dim.size)
        return total

    def _check_dim(self, dim: int) -> None:
        if not (0 <= dim < self.num_dims):
            raise TopologyError(
                f"dimension {dim} out of range for {self.num_dims}-D topology"
            )

    def __repr__(self) -> str:
        bws = "_".join(f"{d.bandwidth_gbps:g}" for d in self.dims)
        return f"MultiDimTopology({self.notation()}, bw={bws} GB/s)"


_DIM_RE = re.compile(r"^\s*([A-Za-z]+)\s*\(\s*(\d+)\s*\)\s*$")


def parse_topology(
    notation: str,
    bandwidths_gbps: Sequence[float],
    latencies_ns: Sequence[float] = (),
    name: str = "",
) -> MultiDimTopology:
    """Build a topology from paper-style notation.

    Example::

        parse_topology("Ring(16)_FC(8)_Switch(4)", [200, 100, 50])

    ``latencies_ns`` defaults to 500 ns per dimension when omitted.
    """
    parts = [p for p in notation.split("_") if p.strip()]
    if not parts:
        raise TopologyError(f"empty topology notation {notation!r}")
    if len(bandwidths_gbps) != len(parts):
        raise TopologyError(
            f"{len(parts)} dimensions in {notation!r} but "
            f"{len(bandwidths_gbps)} bandwidths given"
        )
    if latencies_ns and len(latencies_ns) != len(parts):
        raise TopologyError(
            f"{len(parts)} dimensions in {notation!r} but "
            f"{len(latencies_ns)} latencies given"
        )
    dims = []
    for i, part in enumerate(parts):
        match = _DIM_RE.match(part)
        if not match:
            raise TopologyError(f"malformed dimension {part!r} in {notation!r}")
        block = block_from_name(match.group(1))
        size = int(match.group(2))
        latency = latencies_ns[i] if latencies_ns else 500.0
        dims.append(
            DimSpec(
                block=block,
                size=size,
                bandwidth_gbps=float(bandwidths_gbps[i]),
                latency_ns=latency,
            )
        )
    return MultiDimTopology(dims, name=name)

"""Network building blocks: Ring, FullyConnected, Switch.

The taxonomy (paper Fig. 3a, Table I) constructs arbitrary multi-dimensional
topologies by stacking three building blocks, chosen because each has a
well-known congestion-free topology-aware collective algorithm:

=================  ==========================  ==================
Building block     Collective algorithm        Latency steps (k)
=================  ==========================  ==================
Ring(k)            Ring                        k - 1
FullyConnected(k)  Direct                      1
Switch(k)          Halving-Doubling            ceil(log2(k))
=================  ==========================  ==================

All three are bandwidth-optimal — each NPU moves ``size * (k-1)/k`` bytes
for a Reduce-Scatter or All-Gather — so blocks differ in hop counts and in
the number of latency-bound steps.
"""

from __future__ import annotations

import enum
import math


class BuildingBlock(enum.Enum):
    """The three block types of the topology taxonomy."""

    RING = "Ring"
    FULLY_CONNECTED = "FullyConnected"
    SWITCH = "Switch"

    @property
    def collective_algorithm(self) -> str:
        """Name of the topology-aware collective algorithm (paper Table I)."""
        return _ALGORITHM_BY_BLOCK[self]


_ALGORITHM_BY_BLOCK = {
    BuildingBlock.RING: "ring",
    BuildingBlock.FULLY_CONNECTED: "direct",
    BuildingBlock.SWITCH: "halving_doubling",
}

_ALIASES = {
    "ring": BuildingBlock.RING,
    "r": BuildingBlock.RING,
    "fullyconnected": BuildingBlock.FULLY_CONNECTED,
    "fc": BuildingBlock.FULLY_CONNECTED,
    "switch": BuildingBlock.SWITCH,
    "sw": BuildingBlock.SWITCH,
}


def block_from_name(name: str) -> BuildingBlock:
    """Resolve a block from its full name or short alias (case-insensitive)."""
    try:
        return _ALIASES[name.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown building block {name!r}; expected one of "
            f"{sorted(set(_ALIASES))}"
        ) from None


def hops_between(block: BuildingBlock, size: int, a: int, b: int) -> int:
    """Hop count between local ranks ``a`` and ``b`` inside one block.

    ``a``/``b`` are positions within the dimension, ``0 <= a, b < size``.
    A Switch counts two hops (NPU -> switch -> NPU).
    """
    if not (0 <= a < size and 0 <= b < size):
        raise ValueError(f"ranks ({a}, {b}) out of range for block size {size}")
    if a == b:
        return 0
    if block is BuildingBlock.RING:
        forward = (b - a) % size
        return min(forward, size - forward)
    if block is BuildingBlock.FULLY_CONNECTED:
        return 1
    return 2  # Switch: NPU -> fabric -> NPU


def latency_steps(block: BuildingBlock, size: int) -> int:
    """Number of serialized algorithm steps for RS/AG on this block.

    This is the latency multiplier of the per-dimension collective phase.
    """
    if size < 1:
        raise ValueError(f"block size must be >= 1, got {size}")
    if size == 1:
        return 0
    if block is BuildingBlock.RING:
        return size - 1
    if block is BuildingBlock.FULLY_CONNECTED:
        return 1
    return max(1, math.ceil(math.log2(size)))


def links_per_npu(block: BuildingBlock, size: int) -> int:
    """Number of physical links each NPU owns inside this block."""
    if size <= 1:
        return 0
    if block is BuildingBlock.RING:
        return 2 if size > 2 else 1
    if block is BuildingBlock.FULLY_CONNECTED:
        return size - 1
    return 1  # Switch: one uplink into the fabric


def collective_traffic_fraction(size: int) -> float:
    """Fraction of the payload each NPU serializes for one RS or AG phase.

    All three blocks run bandwidth-optimal algorithms, so the fraction is
    ``(k-1)/k`` regardless of block type.
    """
    if size < 1:
        raise ValueError(f"block size must be >= 1, got {size}")
    return (size - 1) / size


def alltoall_traffic_fraction(block: BuildingBlock, size: int) -> float:
    """Effective serialized payload fraction for an All-to-All phase.

    For FullyConnected and Switch every message takes a direct path, so the
    serialized traffic per NPU is the same ``(k-1)/k`` as RS/AG.  On a Ring,
    messages relay through intermediate NPUs: with shortest-path routing on
    a bidirectional ring (each direction at line rate), the per-link load
    is ``k/8`` of the per-NPU payload, which bounds the phase.
    """
    if size < 1:
        raise ValueError(f"block size must be >= 1, got {size}")
    if size == 1:
        return 0.0
    if block is BuildingBlock.RING:
        if size <= 2:
            return (size - 1) / size
        return size / 8.0
    return (size - 1) / size

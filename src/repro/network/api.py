"""NetworkAPI: the callback protocol between system layer and network backend.

Mirrors the ASTRA-sim frontend NetworkAPI (paper Snippet 2)::

    sim_schedule(delta, callback)
    sim_send(msg_size, dest, callback)
    sim_recv(msg_size, src, callback)

A backend promises that a ``sim_recv`` callback fires when a matching
``sim_send`` message has fully arrived, and a ``sim_send`` callback fires
when the message has left the source (serialization complete).  Messages
match by ``(src, dest, tag)`` in FIFO order, like MPI point-to-point
semantics.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.events import EventEngine
from repro.network.topology import MultiDimTopology


@dataclass
class Message:
    """An in-flight point-to-point message."""

    src: int
    dest: int
    size_bytes: int
    tag: int = 0
    send_time: float = 0.0
    arrival_time: Optional[float] = None


class NetworkBackend(abc.ABC):
    """Abstract network backend implementing the NetworkAPI.

    Concrete backends: :class:`~repro.network.analytical.AnalyticalNetwork`
    and :class:`~repro.network.garnetlite.GarnetLiteNetwork`.
    """

    def __init__(self, engine: EventEngine, topology: MultiDimTopology) -> None:
        self.engine = engine
        self.topology = topology
        # Rendezvous tables keyed by (src, dest, tag); FIFO per key.
        self._arrived: Dict[Tuple[int, int, int], List[Message]] = {}
        self._waiting: Dict[Tuple[int, int, int], List[Callable[[Message], None]]] = {}
        self.messages_delivered = 0
        self.bytes_delivered = 0
        # Telemetry collector (repro.telemetry.Telemetry), attached only
        # when a TelemetryConfig is configured; None keeps every hook on
        # the exact un-instrumented code path.
        self.telemetry = None
        # Invariant checker (repro.validate.InvariantChecker); same
        # contract — None is the zero-cost fast path.
        self.invariants = None

    # -- NetworkAPI --------------------------------------------------------------

    def sim_schedule(self, delta: float, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` after ``delta`` ns of simulated time."""
        self.engine.schedule(delta, callback)

    def sim_send(
        self,
        src: int,
        dest: int,
        size_bytes: int,
        tag: int = 0,
        callback: Optional[Callable[[], None]] = None,
    ) -> None:
        """Send ``size_bytes`` from ``src`` to ``dest``.

        ``callback`` (if given) fires when the message has fully left the
        source.  Delivery is signalled to a matching :meth:`sim_recv`.
        """
        if size_bytes < 0:
            raise ValueError(f"negative message size {size_bytes}")
        if src == dest:
            raise ValueError(f"send to self (NPU {src})")
        message = Message(src=src, dest=dest, size_bytes=size_bytes, tag=tag,
                          send_time=self.engine.now)
        self._transmit(message, callback)

    def sim_recv(
        self,
        dest: int,
        src: int,
        size_bytes: int,
        tag: int = 0,
        callback: Optional[Callable[[Message], None]] = None,
    ) -> None:
        """Register interest in a message from ``src`` to ``dest``.

        ``callback`` fires (with the message) once the matching send has
        fully arrived.  If the message already arrived, fires immediately.
        """
        key = (src, dest, tag)
        arrived = self._arrived.get(key)
        if arrived:
            message = arrived.pop(0)
            if not arrived:
                del self._arrived[key]
            if callback is not None:
                callback(message)
            return
        if callback is not None:
            self._waiting.setdefault(key, []).append(callback)

    # -- backend duties -----------------------------------------------------------

    @abc.abstractmethod
    def _transmit(self, message: Message, on_sent: Optional[Callable[[], None]]) -> None:
        """Model the transfer; must eventually call :meth:`_deliver`."""

    def _deliver(self, message: Message) -> None:
        """Hand an arrived message to a waiting receiver (or queue it)."""
        message.arrival_time = self.engine.now
        self.messages_delivered += 1
        self.bytes_delivered += message.size_bytes
        key = (message.src, message.dest, message.tag)
        waiting = self._waiting.get(key)
        if waiting:
            callback = waiting.pop(0)
            if not waiting:
                del self._waiting[key]
            callback(message)
        else:
            self._arrived.setdefault(key, []).append(message)

    # -- introspection ------------------------------------------------------------

    def pending_receives(self) -> int:
        return sum(len(v) for v in self._waiting.values())

    def undelivered_arrivals(self) -> int:
        return sum(len(v) for v in self._arrived.values())

    # -- telemetry ----------------------------------------------------------------

    def telemetry_sample(self, telemetry, now: float) -> None:
        """Periodic gauge sampling hook; backends override to add their
        own time series (queue depths, active flows).  Called only while
        a collector is installed."""
        telemetry.metrics.gauge("network", "posted_receives").sample(
            now, self.pending_receives())

    def telemetry_finalize(self, telemetry, total_ns: float) -> None:
        """End-of-run metric sweep; backends extend with per-link stats."""
        telemetry.metrics.counter(
            "network", "messages_delivered").value = float(
                self.messages_delivered)
        telemetry.metrics.counter("network", "bytes_delivered").value = float(
            self.bytes_delivered)

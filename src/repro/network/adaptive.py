"""Adaptive packet/flow granularity controller (HyGra-style).

The fidelity/speed trade-off in one backend: every message starts in the
max-min fluid-flow model (one event per rate change), and individual
*links* escalate to packet-granularity simulation when observed
contention crosses a configurable threshold — the regime where the fluid
approximation diverges from store-and-forward reality.  When congestion
drains below ``threshold - hysteresis`` the link de-escalates back to
fluid.  Packet-level event cost is paid only where fidelity buys
accuracy (HyGra, see PAPERS.md; ASTRA-sim2.0 Sec. III).

Mechanics
---------
* Per-link state machine (``_LinkGranState``): ``fluid`` <-> ``packet``
  with hysteresis.  Contention is measured as the number of concurrent
  flows crossing the link.
* Transitions are *observed* at flow joins (escalation candidates) and
  flow drains (de-escalation candidates), then *applied* on dedicated
  zero-delay events issued through the event kernel's batched
  ``schedule_many`` path — so a burst of joins flips a link once, after
  the burst, not once per join.
* The handoff protocol conserves in-flight bytes in both directions:
  escalating a link converts each fluid flow crossing it into a
  sequential packet-segment :class:`_SubFlowGroup` carrying exactly the
  flow's remaining bytes; de-escalating converts a group's unsent
  segments plus the live segment's residue back into one fluid flow.
  ``InvariantChecker.check_granularity_handoff`` audits every
  conversion and a finalize-time conservation check audits the totals.

Fold interaction: escalation is per-*link* state observed at runtime, so
symmetry folding (simulate one rank per equivalence class) would change
which links see contention.  ``repro.core.folding`` auto-disables with
the exact reason ``"adaptive granularity observes per-link contention"``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Set

from repro.events import EventEngine
from repro.network.api import Message
from repro.network.flowlevel import (
    FlowLevelNetwork,
    _Flow,
    _FlowLink,
    _SubFlowGroup,
)
from repro.network.linkgraph import LazyLinkGraph
from repro.network.topology import MultiDimTopology


class _LinkGranState:
    """Granularity state machine for one materialized link."""

    __slots__ = ("link", "mode", "mark", "fluid_ns", "packet_ns", "pending")

    def __init__(self, link: _FlowLink) -> None:
        self.link = link
        self.mode = "fluid"
        # Simulated time at which the current mode was entered; closed
        # out into the residency accumulators on each flip / finalize.
        self.mark = 0.0
        self.fluid_ns = 0.0
        self.packet_ns = 0.0
        # True while a transition event is queued for this link (dedupes
        # the schedule_many batch under bursty joins/drains).
        self.pending = False


class AdaptiveFlowNetwork(FlowLevelNetwork):
    """Fluid-flow backend with runtime per-link granularity escalation.

    Subsumes the static opt-in ``escalation_threshold`` that
    :class:`FlowLevelNetwork` used to take: instead of deciding once at
    message start, a controller watches per-link concurrency and flips
    links between fluid and packet granularity as contention evolves,
    converting in-flight traffic byte-for-byte at each flip.

    Args:
        engine: The shared event engine.
        topology: Physical topology, expanded into the explicit link graph.
        escalation_threshold: A link escalates to packet granularity when
            it carries *more than* this many concurrent flows.  ``0``
            escalates everything (pure-packet work-alike), ``inf`` never
            escalates (bit-identical to :class:`FlowLevelNetwork`).
        deescalation_hysteresis: A packet-mode link de-escalates only
            when its flow count drops to ``escalation_threshold -
            deescalation_hysteresis`` or below, preventing oscillation at
            the threshold boundary.
        escalation_packet_bytes: Segment size for escalated traffic.
    """

    def __init__(
        self,
        engine: EventEngine,
        topology: MultiDimTopology,
        escalation_threshold: float = 4.0,
        deescalation_hysteresis: float = 1.0,
        escalation_packet_bytes: int = 4096,
    ) -> None:
        if math.isnan(escalation_threshold) or escalation_threshold < 0:
            raise ValueError(
                f"escalation_threshold must be >= 0 (inf allowed), "
                f"got {escalation_threshold}")
        if not math.isfinite(deescalation_hysteresis) \
                or deescalation_hysteresis < 0:
            raise ValueError(
                f"deescalation_hysteresis must be finite and >= 0, "
                f"got {deescalation_hysteresis}")
        if escalation_packet_bytes <= 0:
            raise ValueError(
                f"escalation_packet_bytes must be positive, "
                f"got {escalation_packet_bytes}")
        super().__init__(engine, topology)
        self.escalation_threshold = float(escalation_threshold)
        self.deescalation_hysteresis = float(deescalation_hysteresis)
        self.escalation_packet_bytes = int(escalation_packet_bytes)
        # Rebuild the lazy graph so every link knows its key (telemetry
        # names residency counters per link, garnet-lite idiom).
        self._links = LazyLinkGraph(
            topology, lambda bw, lat: _FlowLink(bw, lat),
            on_create=lambda key, link: setattr(link, "key", key))
        # id(link) -> state, only for links that have carried traffic.
        self._gran: Dict[int, _LinkGranState] = {}
        # Links currently in packet mode (id set: O(1) membership on the
        # per-transmit hot path).
        self._packet_links: Set[int] = set()
        self._pending_transitions: List[_FlowLink] = []
        self.escalations = 0
        self.deescalations = 0
        self.handoffs = 0
        self.escalated_messages = 0
        # Byte attribution for the conservation invariant: every byte a
        # message delivers is accounted to exactly one granularity.
        self.fluid_bytes = 0.0
        self.escalated_bytes = 0.0

    # -- controller predicates (mutation-test seams) --------------------------------

    def _should_escalate(self, flow_count: int) -> bool:
        """Fluid link escalates when contention *exceeds* the threshold."""
        return flow_count > self.escalation_threshold

    def _should_deescalate(self, flow_count: int) -> bool:
        """Packet link de-escalates once contention drains below the
        hysteresis band (never while still above the escalation point)."""
        return flow_count <= (self.escalation_threshold
                              - self.deescalation_hysteresis)

    # -- state helpers --------------------------------------------------------------

    def _state_for(self, link: _FlowLink) -> _LinkGranState:
        state = self._gran.get(id(link))
        if state is None:
            state = _LinkGranState(link)
            state.mark = self.engine.now
            self._gran[id(link)] = state
        return state

    def _pend_transition(self, link: _FlowLink, state: _LinkGranState) -> None:
        state.pending = True
        self._pending_transitions.append(link)

    def _flush_transitions(self) -> None:
        if not self._pending_transitions:
            return
        batch = self._pending_transitions
        self._pending_transitions = []
        # Batched through the kernel's bulk path: zero-delay events fire
        # after the current event completes, so a burst of joins at one
        # timestamp is observed once, post-burst.
        self.engine.schedule_many(
            [(0.0, self._apply_transition, (link,)) for link in batch])

    # -- transition application -----------------------------------------------------

    def _apply_transition(self, link: _FlowLink) -> None:
        state = self._gran.get(id(link))
        if state is None:
            return
        state.pending = False
        self._advance_to_now()
        n = len(link.flows)
        # Re-validate at fire time: the burst that pended this event may
        # have drained (or grown) by now.
        if state.mode == "fluid" and self._should_escalate(n):
            self._escalate(link, state)
            self._reallocate()
        elif state.mode == "packet" and self._should_deescalate(n):
            self._deescalate(link, state)
            self._reallocate()

    def _flip_mode(self, state: _LinkGranState, mode: str) -> None:
        now = self.engine.now
        span = now - state.mark
        if state.mode == "fluid":
            state.fluid_ns += span
        else:
            state.packet_ns += span
        state.mode = mode
        state.mark = now

    def _segments(self, size_bytes: float) -> List[int]:
        """Packet segmentation conserving bytes exactly.

        A fractional in-flight residue is carried by rounding the total
        up to whole bytes once (< 1 byte of slack, audited by the
        handoff invariant's tolerance).
        """
        total = max(1, int(math.ceil(size_bytes)))
        packet = self.escalation_packet_bytes
        sizes: List[int] = []
        remaining = total
        while remaining > 0:
            step = min(packet, remaining)
            sizes.append(step)
            remaining -= step
        return sizes

    def _escalate(self, link: _FlowLink, state: _LinkGranState) -> None:
        """Flip one link to packet mode, converting its fluid flows.

        Every non-finished fluid flow crossing the link is replaced by a
        sequential packet-segment group carrying exactly its remaining
        bytes; bytes already sent stay attributed to the fluid model.
        """
        self._flip_mode(state, "packet")
        self._packet_links.add(id(link))
        self.escalations += 1
        self.granularity_escalations += 1
        invariants = self.invariants
        now = self.engine.now
        for flow in list(link.flows):
            if flow.group is not None or flow.finished:
                continue  # already packet-granularity, or about to drain
            before = flow.remaining
            sizes = self._segments(before)
            if invariants is not None:
                invariants.check_granularity_handoff(
                    flow.message, before, float(sum(sizes)), now)
            self.handoffs += 1
            self.fluid_bytes += flow.size - before
            self._remove_flow(flow)
            group = _SubFlowGroup(flow.message, flow.on_sent, flow.links,
                                  sizes)
            self.escalated_messages += 1
            self._launch_next_subflow(group)

    def _deescalate(self, link: _FlowLink, state: _LinkGranState) -> None:
        """Flip one link back to fluid, merging eligible sub-flow groups.

        A group folds back into a single fluid flow only when no link on
        its route remains in packet mode; otherwise its segments keep
        draining at packet granularity until the last packet link clears.
        """
        self._flip_mode(state, "fluid")
        self._packet_links.discard(id(link))
        self.deescalations += 1
        invariants = self.invariants
        packet_links = self._packet_links
        now = self.engine.now
        for flow in list(link.flows):
            group = flow.group
            if group is None or flow.finished:
                continue
            if any(id(lnk) in packet_links for lnk in group.links):
                continue
            before = flow.remaining + float(sum(group.sizes[group.next_idx:]))
            if invariants is not None:
                invariants.check_granularity_handoff(
                    group.message, before, before, now)
            self.handoffs += 1
            # Only the live segment's sent portion: earlier segments
            # were attributed on their own completion.
            self.escalated_bytes += flow.size - flow.remaining
            self._remove_flow(flow)
            merged = _Flow(group.message, group.on_sent, group.links,
                           size_bytes=before)
            # Attribute only the not-yet-sent remainder to this fluid
            # flow (its nominal size is the merged remainder).
            self._flows[merged] = None
            for lnk in merged.links:
                lnk.flows[merged] = None

    def _remove_flow(self, flow: _Flow) -> None:
        self._flows.pop(flow, None)
        for lnk in flow.links:
            lnk.flows.pop(flow, None)

    # -- FlowLevelNetwork overrides ---------------------------------------------------

    def _transmit(self, message: Message,
                  on_sent: Optional[Callable[[], None]]) -> None:
        links = self._link_path(message.src, message.dest)
        self._advance_to_now()
        if self._packet_links and any(
                id(link) in self._packet_links for link in links):
            # Route crosses an escalated segment: start directly at
            # packet granularity so the contended link sees packets.
            group = _SubFlowGroup(message, on_sent, links,
                                  self._segments(float(message.size_bytes)))
            self.escalated_messages += 1
            self._launch_next_subflow(group)
        else:
            flow = _Flow(message, on_sent, links)
            self._flows[flow] = None
            for link in links:
                link.flows[flow] = None
        # Joins can only push links *up* through the threshold.
        for link in links:
            n = len(link.flows)
            if self._should_escalate(n):
                state = self._state_for(link)
                if state.mode == "fluid" and not state.pending:
                    self._pend_transition(link, state)
        self._flush_transitions()
        self._reallocate()

    def _complete_due_flows(self) -> List[_Flow]:
        finished = super()._complete_due_flows()
        for flow in finished:
            if flow.group is not None:
                self.escalated_bytes += flow.size
            else:
                self.fluid_bytes += flow.size
        # Drains can only pull links *down* through the hysteresis band.
        if self._gran:
            for flow in finished:
                for link in flow.links:
                    state = self._gran.get(id(link))
                    if (state is not None and state.mode == "packet"
                            and not state.pending
                            and self._should_deescalate(len(link.flows))):
                        self._pend_transition(link, state)
            self._flush_transitions()
        return finished

    # -- telemetry ------------------------------------------------------------------

    def telemetry_finalize(self, telemetry, total_ns: float) -> None:
        super().telemetry_finalize(telemetry, total_ns)
        metrics = telemetry.metrics
        metrics.counter("network", "escalations").value = float(
            self.escalations)
        metrics.counter("network", "deescalations").value = float(
            self.deescalations)
        metrics.counter("network", "granularity_handoffs").value = float(
            self.handoffs)
        metrics.counter("network", "escalated_messages").value = float(
            self.escalated_messages)
        metrics.counter("network", "fluid_bytes").value = self.fluid_bytes
        metrics.counter("network", "escalated_bytes").value = \
            self.escalated_bytes
        # Per-link granularity residency, loudest links first, capped
        # like garnet-lite's link metrics.
        states = sorted(
            self._gran.values(),
            key=lambda s: -(s.packet_ns + (total_ns - s.mark
                                           if s.mode == "packet" else 0.0)))
        cap = telemetry.config.max_link_metrics
        for state in states[:cap]:
            tail = total_ns - state.mark
            fluid_ns = state.fluid_ns + (tail if state.mode == "fluid" else 0.0)
            packet_ns = state.packet_ns + (
                tail if state.mode == "packet" else 0.0)
            label = "->".join(str(part) for part in state.link.key) \
                if isinstance(state.link.key, tuple) else str(state.link.key)
            metrics.counter(
                "network", f"granularity_residency_ns[{label}][fluid]"
            ).value = fluid_ns
            metrics.counter(
                "network", f"granularity_residency_ns[{label}][packet]"
            ).value = packet_ns
        metrics.counter("network", "links_escalated_now").value = float(
            len(self._packet_links))

"""Analytical network backend (paper Sec. IV-C).

Transfers are costed with the closed-form equation::

    time = link_latency * hops + message_size / link_bandwidth

instead of packet-level simulation.  The one piece of state the backend
keeps is **egress-port serialization**: each NPU owns one injection port per
topology dimension, and consecutive transfers on the same port queue behind
each other.  That is what produces pipeline bubbles on multi-dimensional
topologies and lets chunked hierarchical collectives overlap across
dimensions — the effect the paper's case studies measure.

The paper validates this model against real NCCL measurements (mean error
5%, Fig. 4) and reports ~756x speedup over the Garnet cycle-level backend;
both experiments are reproduced in ``benchmarks/``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.events import EventEngine
from repro.network.api import Message, NetworkBackend
from repro.network.building_blocks import hops_between
from repro.network.topology import MultiDimTopology

# Upper bound for the inlined invariant guard in reserve_port.
_INF = float("inf")


class DimPort:
    """A serializing egress port: tracks when it next becomes free.

    Reservation is O(1): a request at simulation time ``t`` starts at
    ``max(t, free_at)`` and occupies the port for its serialization time.
    Because the event engine hands us requests in time order, this simple
    bookkeeping is equivalent to a FIFO queue.
    """

    __slots__ = ("free_at", "busy_ns", "reservations")

    def __init__(self) -> None:
        self.free_at = 0.0
        self.busy_ns = 0.0
        self.reservations = 0

    def reserve(self, now: float, duration: float) -> Tuple[float, float]:
        """Reserve the port for ``duration`` ns; returns (start, end)."""
        start = max(now, self.free_at)
        end = start + duration
        self.free_at = end
        self.busy_ns += duration
        self.reservations += 1
        return start, end

    def backlog(self, now: float) -> float:
        """Nanoseconds of queued work ahead of a request made now."""
        return max(0.0, self.free_at - now)


class AnalyticalNetwork(NetworkBackend):
    """Closed-form latency/bandwidth backend with port serialization."""

    def __init__(self, engine: EventEngine, topology: MultiDimTopology) -> None:
        super().__init__(engine, topology)
        # Fault-injection state (repro.faults.FaultInjector), attached only
        # when a non-empty schedule is configured; None keeps every hook on
        # the exact pre-fault code path (bit-identical results).
        self.faults = None
        self._ports: Dict[Tuple[int, int], DimPort] = {}
        # Port time planned by chunk schedulers but not yet reserved —
        # lets concurrent collectives see each other's commitments.
        self._pending: Dict[Tuple[int, int], float] = {}
        # Shared fabric capacity per dimension group, engaged only for
        # oversubscribed dimensions (first-order congestion model).
        self._fabrics: Dict[Tuple[int, Tuple[int, ...]], DimPort] = {}
        # Pure-function memos for repeated (src, dest) traffic: the
        # differing-dims list + propagation latency of a pair never
        # change, and neither does a dimension's base bandwidth (fault
        # scaling is applied on top per call).
        self._route_cache: Dict[Tuple[int, int], Tuple[List[int], float]] = {}
        self._fabric_of: Dict[Tuple[int, int], DimPort] = {}
        self._dim_bw: Tuple[float, ...] = tuple(
            d.bandwidth_gbps for d in topology.dims)

    # -- port management -----------------------------------------------------------

    def port(self, npu: int, dim: int) -> DimPort:
        """The egress port of ``npu`` into dimension ``dim`` (lazily created)."""
        key = (npu, dim)
        existing = self._ports.get(key)
        if existing is None:
            existing = self._ports[key] = DimPort()
        return existing

    def port_backlog(self, npu: int, dim: int) -> float:
        """Queued nanoseconds on a port; 0.0 if the port was never used."""
        port = self._ports.get((npu, dim))
        return port.backlog(self.engine.now) if port else 0.0

    def fabric(self, npu: int, dim: int) -> DimPort:
        """The shared fabric of ``npu``'s dimension-``dim`` group."""
        cached = self._fabric_of.get((npu, dim))
        if cached is not None:
            return cached
        coords = list(self.topology.coords(npu))
        coords[dim] = 0
        key = (dim, tuple(coords))
        existing = self._fabrics.get(key)
        if existing is None:
            existing = self._fabrics[key] = DimPort()
        self._fabric_of[(npu, dim)] = existing
        return existing

    def reserve_port(self, npu: int, dim: int, busy_ns: float,
                     symmetric: bool = False) -> Tuple[float, float]:
        """Occupy an egress port for ``busy_ns``; returns (start, end).

        Used by the system layer to model one collective phase as a single
        port occupation rather than individual sends.

        On oversubscribed dimensions the transfer additionally occupies
        the group's shared fabric (the first-order congestion model);
        completion is the later of port and fabric.  ``symmetric=True``
        marks a collective phase in the representative-port model, where
        every group member injects the same traffic simultaneously: the
        fabric load is the whole group's (``busy * oversubscription``)
        rather than one sender's share.  Non-oversubscribed dimensions
        skip the fabric entirely and reduce to the paper's
        congestion-free closed form.
        """
        if busy_ns < 0:
            raise ValueError(f"negative busy time {busy_ns}")
        now = self.engine.now
        start, end = self.port(npu, dim).reserve(now, busy_ns)
        # Inlined invariant guard (see InvariantChecker.check_reservation):
        # the resource label and the checker call are only built when the
        # chained comparison actually fails.
        if self.invariants is not None and not (
                now - 1e-9 <= start <= end < _INF):
            self.invariants.reservation_anomaly(
                start, end, now, resource=f"port({npu},{dim})")
        spec = self.topology.dims[dim]
        if spec.oversubscription > 1.0 and spec.size > 1:
            if symmetric:
                fabric_busy = busy_ns * spec.oversubscription
            else:
                fabric_busy = busy_ns * spec.oversubscription / spec.size
            _, fabric_end = self.fabric(npu, dim).reserve(
                self.engine.now, fabric_busy)
            end = max(end, fabric_end)
        return start, end

    # -- planned (not yet reserved) load ---------------------------------------------

    def pending_load(self, npu: int, dim: int) -> float:
        """Port time planned by chunk schedulers but not yet reserved."""
        return self._pending.get((npu, dim), 0.0)

    def add_pending(self, npu: int, dim: int, amount_ns: float) -> None:
        """Register planned future port time (chunk committed to a plan)."""
        key = (npu, dim)
        self._pending[key] = self._pending.get(key, 0.0) + amount_ns

    def consume_pending(self, npu: int, dim: int, amount_ns: float) -> None:
        """Convert planned time into a reservation (clamped at zero)."""
        key = (npu, dim)
        remaining = self._pending.get(key, 0.0) - amount_ns
        if remaining <= 1e-9:
            self._pending.pop(key, None)
        else:
            self._pending[key] = remaining

    # -- point-to-point -------------------------------------------------------------

    def serialization_time(self, size_bytes: int, dim: int) -> float:
        """Bandwidth term: size / per-dim injection bandwidth, in ns.

        Active whole-dimension degradation faults scale the bandwidth, so
        transfers priced after a fault activates — including later phases
        of an in-flight operation — see the degraded rate.
        """
        bw = self._dim_bw[dim]  # GB/s == bytes/ns
        if self.faults is not None and not self.faults.idle:
            bw *= self.faults.bandwidth_scale(dim)
        return size_bytes / bw

    def _route(self, src: int, dest: int) -> Tuple[List[int], float]:
        """Memoised ``(differing_dims, propagation_ns)`` for a pair.

        Both values are pure functions of the topology, so a pair's route
        is computed once however many chunks traverse it.
        """
        cached = self._route_cache.get((src, dest))
        if cached is not None:
            return cached
        a = self.topology.coords(src)
        b = self.topology.coords(dest)
        dims: List[int] = []
        prop = 0.0
        for dim_idx, dim in enumerate(self.topology.dims):
            ca, cb = a[dim_idx], b[dim_idx]
            if ca != cb:
                dims.append(dim_idx)
            prop += hops_between(dim.block, dim.size, ca, cb) * dim.latency_ns
        self._route_cache[(src, dest)] = (dims, prop)
        return dims, prop

    def propagation_time(self, src: int, dest: int) -> float:
        """Latency term: sum of per-dimension hop latencies, in ns."""
        return self._route(src, dest)[1]

    def _differing_dims(self, src: int, dest: int) -> list:
        return self._route(src, dest)[0]

    def transfer_time(self, src: int, dest: int, size_bytes: int) -> float:
        """Unloaded end-to-end transfer time (no queueing).

        Multi-dimensional routes (dimension-order, like the packet
        backend) serialize once per crossed dimension — store-and-forward
        at each level's line rate.
        """
        dims, prop = self._route(src, dest)
        return prop + sum(
            self.serialization_time(size_bytes, d) for d in dims
        )

    def _transmit(self, message: Message, on_sent: Optional[Callable[[], None]]) -> None:
        dims, prop = self._route(message.src, message.dest)
        if not dims:
            raise ValueError(
                f"no route: NPUs {message.src} and {message.dest} coincide"
            )
        # The sender's port on the first crossed dimension is the
        # contended injection point; the remaining dimensions relay at
        # line rate (store-and-forward) without modeled contention.
        inject = self.serialization_time(message.size_bytes, dims[0])
        if self.faults is not None and not self.faults.idle:
            inject = self.faults.stretch_p2p(message.src, dims[0], inject)
        _, sent_at = self.reserve_port(message.src, dims[0], inject)
        relay = sum(self.serialization_time(message.size_bytes, d)
                    for d in dims[1:])
        if self.telemetry is not None:
            # Store-and-forward: the message serializes once per crossed
            # dimension, so each one carries the full payload.
            for d in dims:
                self.telemetry.add_dim_traffic(d, message.size_bytes)
        if on_sent is not None:
            self.engine.schedule_at(sent_at, on_sent)
        self.engine.schedule_at(sent_at + relay + prop, self._deliver, message)

    # -- statistics -----------------------------------------------------------------

    def port_utilization(self, npu: int, dim: int) -> float:
        """Fraction of elapsed time a port spent serializing."""
        port = self._ports.get((npu, dim))
        if port is None or self.engine.now == 0:
            return 0.0
        return min(1.0, port.busy_ns / self.engine.now)

    # -- telemetry ------------------------------------------------------------------

    def telemetry_sample(self, telemetry, now: float) -> None:
        """Sample the deepest egress-port backlog (queueing pressure)."""
        super().telemetry_sample(telemetry, now)
        deepest = 0.0
        for port in self._ports.values():
            backlog = port.free_at - now
            if backlog > deepest:
                deepest = backlog
        telemetry.metrics.gauge(
            "network", "max_port_backlog_ns").sample(now, deepest)

    def telemetry_finalize(self, telemetry, total_ns: float) -> None:
        """Per-port busy time and utilisation (heaviest ports first)."""
        super().telemetry_finalize(telemetry, total_ns)
        metrics = telemetry.metrics
        ports = sorted(self._ports.items(), key=lambda kv: -kv[1].busy_ns)
        cap = telemetry.config.max_link_metrics
        for (npu, dim), port in ports[:cap]:
            metrics.counter("network", "port_busy_ns",
                            npu=npu, dim=dim).value = port.busy_ns
            metrics.counter("network", "port_reservations",
                            npu=npu, dim=dim).value = float(port.reservations)
            if total_ns > 0:
                metrics.gauge("network", "port_utilization",
                              npu=npu, dim=dim).set(
                                  min(1.0, port.busy_ns / total_ns))
        metrics.counter("network", "ports_total").value = float(
            len(self._ports))
        metrics.counter("network", "ports_dropped").value = float(
            max(0, len(self._ports) - cap))

"""Multi-dimensional hierarchical network modeling (paper Secs. IV-B, IV-C).

This subpackage provides:

- the **topology taxonomy**: :class:`BuildingBlock` (Ring / FullyConnected /
  Switch), :class:`DimSpec`, and :class:`MultiDimTopology`, including the
  string notation parser (``"Ring(4)_FC(2)_Switch(8)"``);
- the **NetworkAPI** callback protocol (:class:`NetworkBackend`);
- the **analytical backend** (:class:`AnalyticalNetwork`) computing
  ``time = latency * hops + size / bandwidth`` with egress-port
  serialization, and
- **Garnet-lite** (:class:`GarnetLiteNetwork`), a packet-level cycle-driven
  backend used as the slow, detailed reference in the speedup study.
"""

from repro.network.building_blocks import BuildingBlock, block_from_name
from repro.network.topology import (
    CommGroup,
    CoordinateError,
    DimSpec,
    MultiDimTopology,
    TopologyError,
    parse_topology,
)
from repro.network.api import Message, NetworkBackend
from repro.network.analytical import AnalyticalNetwork
from repro.network.flowlevel import FlowLevelNetwork
from repro.network.garnetlite import GarnetLiteNetwork
from repro.network.adaptive import AdaptiveFlowNetwork

__all__ = [
    "AdaptiveFlowNetwork",
    "AnalyticalNetwork",
    "BuildingBlock",
    "CommGroup",
    "CoordinateError",
    "DimSpec",
    "FlowLevelNetwork",
    "GarnetLiteNetwork",
    "Message",
    "MultiDimTopology",
    "NetworkBackend",
    "TopologyError",
    "block_from_name",
    "parse_topology",
]

"""Shared link-graph construction and routing for detailed backends.

Both the packet-level (:mod:`repro.network.garnetlite`) and flow-level
(:mod:`repro.network.flowlevel`) backends expand a
:class:`~repro.network.topology.MultiDimTopology` into an explicit graph
of directed links and route with dimension-order routing.  Switch dims
introduce fabric nodes (``("sw", dim, group-coords)``).

Link provisioning mirrors the analytical model's serialization rates:
ring links are full-duplex at line rate (the dim bandwidth is per
direction), fully-connected fans the dim bandwidth across its k-1 links,
and a switch gives each NPU a full-rate uplink/downlink pair.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.network.building_blocks import BuildingBlock
from repro.network.topology import MultiDimTopology

NodeId = Hashable  # NPU ids are ints; switch fabrics are ("sw", dim, coords).
LinkKey = Tuple[NodeId, NodeId]


def switch_node(topology: MultiDimTopology, npu: int, dim_idx: int) -> NodeId:
    """Fabric node shared by the NPU's dim group."""
    coords = list(topology.coords(npu))
    coords[dim_idx] = 0  # group identity: zero out the dim coordinate
    return ("sw", dim_idx, tuple(coords))


def build_links(
    topology: MultiDimTopology,
    make_link: Callable[[float, float], object],
) -> Dict[LinkKey, object]:
    """Expand the topology into directed links.

    ``make_link(bandwidth_gbps, latency_ns)`` constructs the backend's
    per-link state object.
    """
    links: Dict[LinkKey, object] = {}

    def add(a: NodeId, b: NodeId, bw: float, lat: float) -> None:
        links[(a, b)] = make_link(bw, lat)

    for dim_idx, dim in enumerate(topology.dims):
        if dim.size <= 1:
            continue
        # Ring links are full-duplex at line rate; FC fans the dim
        # bandwidth across its k-1 links; a switch uplink runs at line
        # rate.  Oversubscription is a property of switch fabrics and is
        # modeled by detailed backends at the fabric node's links.
        if dim.block is BuildingBlock.FULLY_CONNECTED:
            per_link_bw = dim.bandwidth_gbps / max(1, dim.size - 1)
        else:
            per_link_bw = dim.bandwidth_gbps
        for npu in range(topology.num_npus):
            coords = topology.coords(npu)
            me = coords[dim_idx]
            if dim.block is BuildingBlock.RING:
                for step in (1, -1) if dim.size > 2 else (1,):
                    neighbor = list(coords)
                    neighbor[dim_idx] = (me + step) % dim.size
                    add(npu, topology.npu_id(neighbor), per_link_bw,
                        dim.latency_ns)
            elif dim.block is BuildingBlock.FULLY_CONNECTED:
                for other in range(dim.size):
                    if other == me:
                        continue
                    neighbor = list(coords)
                    neighbor[dim_idx] = other
                    add(npu, topology.npu_id(neighbor), per_link_bw,
                        dim.latency_ns)
            else:  # SWITCH: two hops at full per-hop latency
                fabric = switch_node(topology, npu, dim_idx)
                add(npu, fabric, dim.bandwidth_gbps, dim.latency_ns)
                add(fabric, npu, dim.bandwidth_gbps, dim.latency_ns)
    return links


def total_link_count(topology: MultiDimTopology) -> int:
    """Directed links :func:`build_links` would create, in closed form."""
    total = 0
    for dim in topology.dims:
        if dim.size <= 1:
            continue
        if dim.block is BuildingBlock.RING:
            per_npu = 2 if dim.size > 2 else 1
        elif dim.block is BuildingBlock.FULLY_CONNECTED:
            per_npu = dim.size - 1
        else:  # SWITCH: uplink + downlink
            per_npu = 2
        total += topology.num_npus * per_npu
    return total


def link_spec(
    topology: MultiDimTopology, a: NodeId, b: NodeId
) -> Optional[Tuple[float, float]]:
    """``(bandwidth_gbps, latency_ns)`` of directed link ``a -> b``.

    Returns ``None`` when the pair is not a physical link of the
    topology.  This is the closed-form inverse of :func:`build_links`'
    enumeration: it answers for one key in O(num_dims) so the detailed
    backends can materialize links on first touch instead of building
    all O(npus) of them up front.
    """
    dims = topology.dims
    if isinstance(a, int) and isinstance(b, int):
        if not (0 <= a < topology.num_npus and 0 <= b < topology.num_npus):
            return None
        if a == b:
            return None
        ca, cb = topology.coords(a), topology.coords(b)
        diff = [i for i in range(len(dims)) if ca[i] != cb[i]]
        if len(diff) != 1:
            return None
        d = diff[0]
        dim = dims[d]
        if dim.block is BuildingBlock.RING:
            delta = (cb[d] - ca[d]) % dim.size
            if delta == 1 or (dim.size > 2 and delta == dim.size - 1):
                return (dim.bandwidth_gbps, dim.latency_ns)
            return None
        if dim.block is BuildingBlock.FULLY_CONNECTED:
            return (dim.bandwidth_gbps / max(1, dim.size - 1), dim.latency_ns)
        return None  # SWITCH dims connect through the fabric node
    # Switch uplink (npu -> fabric) or downlink (fabric -> npu).
    if isinstance(a, int):
        npu, fabric = a, b
    elif isinstance(b, int):
        npu, fabric = b, a
    else:
        return None
    if not (isinstance(fabric, tuple) and len(fabric) == 3
            and fabric[0] == "sw"):
        return None
    if not (0 <= npu < topology.num_npus):
        return None
    d = fabric[1]
    if not (isinstance(d, int) and 0 <= d < len(dims)
            and dims[d].block is BuildingBlock.SWITCH and dims[d].size > 1):
        return None
    if switch_node(topology, npu, d) != fabric:
        return None
    return (dims[d].bandwidth_gbps, dims[d].latency_ns)


class LazyLinkGraph:
    """Dict-like link graph that materializes links on first touch.

    Semantically identical to the mapping :func:`build_links` returns
    (enforced by ``tests/test_network_linkgraph.py``), but construction
    is O(1) and each link is created the first time a route crosses it —
    a million-NPU topology costs nothing until traffic actually flows.
    Iteration and ``len`` cover only the materialized links (the rest
    carried no traffic by construction); :meth:`total_count` gives the
    full physical count in closed form.
    """

    __slots__ = ("_topology", "_make_link", "_on_create", "_materialized")

    def __init__(
        self,
        topology: MultiDimTopology,
        make_link: Callable[[float, float], object],
        on_create: Optional[Callable[[LinkKey, object], None]] = None,
    ) -> None:
        self._topology = topology
        self._make_link = make_link
        self._on_create = on_create
        self._materialized: Dict[LinkKey, object] = {}

    def get(self, key: LinkKey) -> Optional[object]:
        """The link for ``key``, created on first touch; None if no link."""
        link = self._materialized.get(key)
        if link is None:
            spec = link_spec(self._topology, key[0], key[1])
            if spec is None:
                return None
            link = self._materialized[key] = self._make_link(*spec)
            if self._on_create is not None:
                self._on_create(key, link)
        return link

    def total_count(self) -> int:
        """Physical links in the topology (closed form, O(num_dims))."""
        return total_link_count(self._topology)

    def values(self):
        return self._materialized.values()

    def items(self):
        return self._materialized.items()

    def __iter__(self):
        return iter(self._materialized)

    def __len__(self) -> int:
        return len(self._materialized)


def dimension_order_route(
    topology: MultiDimTopology, src: int, dst: int
) -> List[NodeId]:
    """Dimension-order route from src to dst (inclusive of endpoints)."""
    path: List[NodeId] = [src]
    current = list(topology.coords(src))
    target = topology.coords(dst)
    for dim_idx, dim in enumerate(topology.dims):
        if current[dim_idx] == target[dim_idx]:
            continue
        if dim.block is BuildingBlock.RING:
            k = dim.size
            forward = (target[dim_idx] - current[dim_idx]) % k
            step = 1 if forward <= k - forward else -1
            while current[dim_idx] != target[dim_idx]:
                current[dim_idx] = (current[dim_idx] + step) % k
                path.append(topology.npu_id(current))
        elif dim.block is BuildingBlock.FULLY_CONNECTED:
            current[dim_idx] = target[dim_idx]
            path.append(topology.npu_id(current))
        else:  # SWITCH
            here = topology.npu_id(current)
            path.append(switch_node(topology, here, dim_idx))
            current[dim_idx] = target[dim_idx]
            path.append(topology.npu_id(current))
    return path

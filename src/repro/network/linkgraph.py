"""Shared link-graph construction and routing for detailed backends.

Both the packet-level (:mod:`repro.network.garnetlite`) and flow-level
(:mod:`repro.network.flowlevel`) backends expand a
:class:`~repro.network.topology.MultiDimTopology` into an explicit graph
of directed links and route with dimension-order routing.  Switch dims
introduce fabric nodes (``("sw", dim, group-coords)``).

Link provisioning mirrors the analytical model's serialization rates:
ring links are full-duplex at line rate (the dim bandwidth is per
direction), fully-connected fans the dim bandwidth across its k-1 links,
and a switch gives each NPU a full-rate uplink/downlink pair.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Tuple

from repro.network.building_blocks import BuildingBlock
from repro.network.topology import MultiDimTopology

NodeId = Hashable  # NPU ids are ints; switch fabrics are ("sw", dim, coords).
LinkKey = Tuple[NodeId, NodeId]


def switch_node(topology: MultiDimTopology, npu: int, dim_idx: int) -> NodeId:
    """Fabric node shared by the NPU's dim group."""
    coords = list(topology.coords(npu))
    coords[dim_idx] = 0  # group identity: zero out the dim coordinate
    return ("sw", dim_idx, tuple(coords))


def build_links(
    topology: MultiDimTopology,
    make_link: Callable[[float, float], object],
) -> Dict[LinkKey, object]:
    """Expand the topology into directed links.

    ``make_link(bandwidth_gbps, latency_ns)`` constructs the backend's
    per-link state object.
    """
    links: Dict[LinkKey, object] = {}

    def add(a: NodeId, b: NodeId, bw: float, lat: float) -> None:
        links[(a, b)] = make_link(bw, lat)

    for dim_idx, dim in enumerate(topology.dims):
        if dim.size <= 1:
            continue
        # Ring links are full-duplex at line rate; FC fans the dim
        # bandwidth across its k-1 links; a switch uplink runs at line
        # rate.  Oversubscription is a property of switch fabrics and is
        # modeled by detailed backends at the fabric node's links.
        if dim.block is BuildingBlock.FULLY_CONNECTED:
            per_link_bw = dim.bandwidth_gbps / max(1, dim.size - 1)
        else:
            per_link_bw = dim.bandwidth_gbps
        for npu in range(topology.num_npus):
            coords = topology.coords(npu)
            me = coords[dim_idx]
            if dim.block is BuildingBlock.RING:
                for step in (1, -1) if dim.size > 2 else (1,):
                    neighbor = list(coords)
                    neighbor[dim_idx] = (me + step) % dim.size
                    add(npu, topology.npu_id(neighbor), per_link_bw,
                        dim.latency_ns)
            elif dim.block is BuildingBlock.FULLY_CONNECTED:
                for other in range(dim.size):
                    if other == me:
                        continue
                    neighbor = list(coords)
                    neighbor[dim_idx] = other
                    add(npu, topology.npu_id(neighbor), per_link_bw,
                        dim.latency_ns)
            else:  # SWITCH: two hops at full per-hop latency
                fabric = switch_node(topology, npu, dim_idx)
                add(npu, fabric, dim.bandwidth_gbps, dim.latency_ns)
                add(fabric, npu, dim.bandwidth_gbps, dim.latency_ns)
    return links


def dimension_order_route(
    topology: MultiDimTopology, src: int, dst: int
) -> List[NodeId]:
    """Dimension-order route from src to dst (inclusive of endpoints)."""
    path: List[NodeId] = [src]
    current = list(topology.coords(src))
    target = topology.coords(dst)
    for dim_idx, dim in enumerate(topology.dims):
        if current[dim_idx] == target[dim_idx]:
            continue
        if dim.block is BuildingBlock.RING:
            k = dim.size
            forward = (target[dim_idx] - current[dim_idx]) % k
            step = 1 if forward <= k - forward else -1
            while current[dim_idx] != target[dim_idx]:
                current[dim_idx] = (current[dim_idx] + step) % k
                path.append(topology.npu_id(current))
        elif dim.block is BuildingBlock.FULLY_CONNECTED:
            current[dim_idx] = target[dim_idx]
            path.append(topology.npu_id(current))
        else:  # SWITCH
            here = topology.npu_id(current)
            path.append(switch_node(topology, here, dim_idx))
            current[dim_idx] = target[dim_idx]
            path.append(topology.npu_id(current))
    return path

"""Garnet-lite: a packet-level, cycle-driven network backend.

This is the detailed (and deliberately slow) reference backend standing in
for gem5's Garnet in the paper's speedup study (Sec. IV-C).  Messages are
segmented into fixed-size packets; every packet is routed hop-by-hop with
dimension-order routing through an explicit link graph, with
store-and-forward serialization and per-link contention.  Every packet hop
is one simulator event — exactly the per-packet cost that makes
cycle-level network simulation three orders of magnitude slower than the
analytical backend.

Unlike :class:`~repro.network.analytical.AnalyticalNetwork`, this backend
models link oversubscription and congestion, so it doubles as a ground
truth for the analytical model's accuracy on congestion-free collective
traffic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.events import EventEngine
from repro.network.api import Message, NetworkBackend
from repro.network.linkgraph import (
    LazyLinkGraph,
    NodeId,
    dimension_order_route,
)
from repro.network.topology import MultiDimTopology, TopologyError

DEFAULT_PACKET_BYTES = 4096


class _Link:
    """A directed link: serializing resource with latency."""

    __slots__ = ("bandwidth", "latency_ns", "free_at", "bytes_carried", "key")

    def __init__(self, bandwidth_gbps: float, latency_ns: float) -> None:
        self.bandwidth = bandwidth_gbps  # GB/s == bytes/ns
        self.latency_ns = latency_ns
        self.free_at = 0.0
        self.bytes_carried = 0
        self.key: Tuple[NodeId, NodeId] = ((), ())  # set by _build_links

    def transmit(self, now: float, size_bytes: int) -> Tuple[float, float]:
        """Serialize a packet; returns (departure_complete, arrival)."""
        start = max(now, self.free_at)
        done = start + size_bytes / self.bandwidth
        self.free_at = done
        self.bytes_carried += size_bytes
        return done, done + self.latency_ns


class _PacketFlow:
    """Book-keeping for one message's packets in flight."""

    __slots__ = ("message", "on_sent", "packets_total", "packets_arrived",
                 "packets_injected", "backend")

    def __init__(self, backend: "GarnetLiteNetwork", message: Message,
                 on_sent: Optional[Callable[[], None]], packets_total: int) -> None:
        self.backend = backend
        self.message = message
        self.on_sent = on_sent
        self.packets_total = packets_total
        self.packets_arrived = 0
        self.packets_injected = 0


class GarnetLiteNetwork(NetworkBackend):
    """Packet-level backend with per-link contention.

    Args:
        engine: The shared event engine.
        topology: Physical topology; links are derived per building block
            (ring: two directed neighbor links at half the dim bandwidth
            each; fully-connected: k-1 links at bw/(k-1); switch: one
            uplink/downlink pair at full dim bandwidth through a fabric
            node with zero internal serialization).
        packet_bytes: Packet segmentation size.
        train_packets: Packets coalesced per simulator event (a packet
            *train*).  At the default of 1 every packet hop is its own
            event — the exact reference behaviour.  Larger values trade
            granularity for speed: a train serializes as one burst, so
            interleaving with competing traffic is resolved at train
            rather than packet granularity (event count drops by ~the
            train length; per-message completion times shift by at most
            one train's serialization per hop).
    """

    def __init__(
        self,
        engine: EventEngine,
        topology: MultiDimTopology,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
        train_packets: int = 1,
    ) -> None:
        super().__init__(engine, topology)
        if packet_bytes <= 0:
            raise ValueError(f"packet_bytes must be positive, got {packet_bytes}")
        if train_packets < 1:
            raise ValueError(f"train_packets must be >= 1, got {train_packets}")
        self.packet_bytes = packet_bytes
        self.train_packets = train_packets
        # Links materialize on first touch (LazyLinkGraph), so topology
        # size costs nothing until a route actually crosses a link.
        self._links = LazyLinkGraph(
            topology, lambda bw, lat: _Link(bw, lat),
            on_create=lambda key, link: setattr(link, "key", key))
        # Routes and their per-hop link objects are pure functions of the
        # topology; collective traffic revisits the same (src, dst) pairs
        # once per packet per chunk, so resolve each pair once.
        self._path_cache: Dict[Tuple[int, int], Tuple[_Link, ...]] = {}
        self.packet_hops = 0

    def route(self, src: int, dst: int) -> List[NodeId]:
        """Dimension-order route from src to dst (inclusive of endpoints)."""
        return dimension_order_route(self.topology, src, dst)

    def _link_path(self, src: int, dst: int) -> Tuple[_Link, ...]:
        """Memoised per-hop link objects along the dimension-order route."""
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return cached
        path = self.route(src, dst)
        if len(path) < 2:
            raise TopologyError(f"no route from {src} to {dst}")
        links = []
        for a, b in zip(path, path[1:]):
            link = self._links.get((a, b))
            if link is None:
                raise TopologyError(f"missing link {a!r} -> {b!r}")
            links.append(link)
        resolved = self._path_cache[(src, dst)] = tuple(links)
        return resolved

    # -- transmission ------------------------------------------------------------

    def _transmit(self, message: Message, on_sent: Optional[Callable[[], None]]) -> None:
        links = self._link_path(message.src, message.dest)
        n_packets = max(1, -(-message.size_bytes // self.packet_bytes))
        unit = self.packet_bytes * self.train_packets
        n_segments = max(1, -(-message.size_bytes // unit))
        flow = _PacketFlow(self, message, on_sent, n_packets)
        remaining = message.size_bytes
        for _ in range(n_segments):
            size = min(unit, remaining) if remaining else self.packet_bytes
            remaining -= size
            count = max(1, -(-size // self.packet_bytes))
            self._hop(flow, links, 0, max(1, size), count)

    def _hop(self, flow: _PacketFlow, links: Tuple[_Link, ...], hop_idx: int,
             size: int, count: int) -> None:
        """Advance one segment (``count`` packets) across ``links[hop_idx]``."""
        link = links[hop_idx]
        departed, arrived = link.transmit(self.engine.now, size)
        self.packet_hops += count
        telemetry = self.telemetry
        if telemetry is not None and telemetry.packet_spans:
            # One span per segment-hop on the link's own track: the
            # serialization window just reserved on the link.
            telemetry.spans.add(
                f"link {link.key[0]}->{link.key[1]}",
                f"pkt x{count}", "packet",
                departed - size / link.bandwidth, departed)
        if hop_idx == 0:
            flow.packets_injected += count
            if flow.packets_injected == flow.packets_total and flow.on_sent:
                self.engine.schedule_at(departed, flow.on_sent)
        if hop_idx + 1 == len(links):
            self.engine.schedule_at(arrived, self._segment_arrived, flow, count)
        else:
            self.engine.schedule_at(
                arrived, self._hop, flow, links, hop_idx + 1, size, count
            )

    def _segment_arrived(self, flow: _PacketFlow, count: int) -> None:
        flow.packets_arrived += count
        if self.invariants is not None:
            self.invariants.check_packet_flow(flow, self.engine.now)
        if flow.packets_arrived == flow.packets_total:
            self._deliver(flow.message)

    # -- statistics ----------------------------------------------------------------

    def link_count(self) -> int:
        """Physical links in the topology (closed form; lazy graph)."""
        return self._links.total_count()

    def max_link_bytes(self) -> int:
        """Heaviest-loaded link — nonuniformity here indicates congestion.

        Only materialized links are scanned; untouched links carried
        zero bytes by construction.
        """
        return max((l.bytes_carried for l in self._links.values()), default=0)

    # -- telemetry ----------------------------------------------------------------

    def telemetry_sample(self, telemetry, now: float) -> None:
        """Sample router-queue pressure: per-link serialization backlog."""
        super().telemetry_sample(telemetry, now)
        deepest = 0.0
        queued = 0
        for link in self._links.values():
            backlog = link.free_at - now
            if backlog > 0:
                queued += 1
                if backlog > deepest:
                    deepest = backlog
        metrics = telemetry.metrics
        metrics.gauge("network", "max_link_backlog_ns").sample(now, deepest)
        metrics.gauge("network", "busy_links").sample(now, queued)

    def telemetry_finalize(self, telemetry, total_ns: float) -> None:
        """Per-link bytes and utilisation (heaviest links first) + hops."""
        super().telemetry_finalize(telemetry, total_ns)
        metrics = telemetry.metrics
        metrics.counter("network", "packet_hops").value = float(
            self.packet_hops)
        links = sorted(self._links.values(), key=lambda l: -l.bytes_carried)
        cap = telemetry.config.max_link_metrics
        for link in links[:cap]:
            label = f"{link.key[0]}->{link.key[1]}"
            metrics.counter("network", "link_bytes",
                            link=label).value = float(link.bytes_carried)
            if total_ns > 0:
                metrics.gauge("network", "link_utilization", link=label).set(
                    min(1.0, link.bytes_carried / link.bandwidth / total_ns))
        total = self._links.total_count()
        metrics.counter("network", "links_total").value = float(total)
        metrics.counter("network", "links_dropped").value = float(
            max(0, total - min(cap, len(links))))

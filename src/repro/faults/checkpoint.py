"""Checkpoint/restart cost model for permanent-failure resilience.

Training jobs survive permanent NPU failures by periodically snapshotting
model state and, on failure, restarting from the last snapshot and
replaying the lost work.  This module prices that strategy analytically
so checkpoint interval can be swept against MTBF:

- **Snapshot cost**: each checkpoint writes ``snapshot_bytes`` (per NPU —
  typically the ZeRO model-state footprint from
  :func:`repro.memory.capacity.transformer_footprint`) at
  ``write_bandwidth_gbps``, stalling training for ``snapshot_ns``.
- **Restart cost** per permanent failure at time ``t``: a fixed
  ``restart_overhead_ns`` (detection, rescheduling onto a spare,
  reloading the snapshot) plus **replay** of the work done since the last
  checkpoint boundary (``t mod interval``; without checkpointing the
  whole prefix ``t`` is lost).

The classic Young/Daly optimum ``interval = sqrt(2 * snapshot * MTBF)``
falls out of this model; :func:`optimal_interval_ns` computes it for
example sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

GiB = 1 << 30

DEFAULT_WRITE_BANDWIDTH_GBPS = 25.0  # parallel FS / burst-buffer per NPU
DEFAULT_RESTART_OVERHEAD_NS = 30e9  # detect + reschedule + reload, 30 s


@dataclass(frozen=True)
class CheckpointConfig:
    """How (and whether) the job checkpoints.

    Attributes:
        interval_ns: Time between snapshots; ``None`` disables periodic
            checkpointing (a failure then loses the whole run prefix).
        snapshot_bytes: Bytes written per NPU per snapshot.
        write_bandwidth_gbps: Checkpoint-store write bandwidth per NPU,
            GB/s (numerically bytes/ns).
        restart_overhead_ns: Fixed cost of one restart (detection,
            rescheduling, snapshot reload).
    """

    interval_ns: Optional[float]
    snapshot_bytes: float = 0.0
    write_bandwidth_gbps: float = DEFAULT_WRITE_BANDWIDTH_GBPS
    restart_overhead_ns: float = DEFAULT_RESTART_OVERHEAD_NS

    def __post_init__(self) -> None:
        if self.interval_ns is not None and self.interval_ns <= 0:
            raise ValueError(
                f"interval_ns must be positive, got {self.interval_ns}")
        if self.snapshot_bytes < 0:
            raise ValueError(
                f"snapshot_bytes must be >= 0, got {self.snapshot_bytes}")
        if self.write_bandwidth_gbps <= 0:
            raise ValueError(
                f"write_bandwidth_gbps must be positive, "
                f"got {self.write_bandwidth_gbps}")
        if self.restart_overhead_ns < 0:
            raise ValueError(
                f"restart_overhead_ns must be >= 0, "
                f"got {self.restart_overhead_ns}")

    @property
    def snapshot_ns(self) -> float:
        """Stall time of one snapshot write."""
        return self.snapshot_bytes / self.write_bandwidth_gbps

    @classmethod
    def from_footprint(
        cls,
        footprint,
        interval_ns: Optional[float],
        write_bandwidth_gbps: float = DEFAULT_WRITE_BANDWIDTH_GBPS,
        restart_overhead_ns: float = DEFAULT_RESTART_OVERHEAD_NS,
    ) -> "CheckpointConfig":
        """Price snapshots from a per-NPU memory footprint.

        ``footprint`` is a :class:`repro.memory.capacity.MemoryFootprint`;
        a checkpoint persists its *model state* (parameters + optimizer;
        activations are recomputed on replay).
        """
        return cls(interval_ns=interval_ns,
                   snapshot_bytes=float(footprint.model_state),
                   write_bandwidth_gbps=write_bandwidth_gbps,
                   restart_overhead_ns=restart_overhead_ns)


def num_checkpoints(config: CheckpointConfig, total_ns: float) -> int:
    """Snapshots taken during ``total_ns`` of useful simulated time."""
    if config.interval_ns is None or total_ns <= 0:
        return 0
    return int(total_ns // config.interval_ns)


def checkpoint_overhead_ns(config: CheckpointConfig, total_ns: float) -> float:
    """Total stall time spent writing snapshots over the run."""
    return num_checkpoints(config, total_ns) * config.snapshot_ns


def restart_cost_ns(config: Optional[CheckpointConfig], fail_time_ns: float) -> float:
    """Time one permanent failure at ``fail_time_ns`` costs the job.

    Replay-from-last-checkpoint plus the fixed restart overhead.  With no
    checkpoint config (or no interval) the whole prefix is replayed and
    the default restart overhead applies.
    """
    if fail_time_ns < 0:
        raise ValueError(f"fail_time_ns must be >= 0, got {fail_time_ns}")
    if config is None:
        return DEFAULT_RESTART_OVERHEAD_NS + fail_time_ns
    if config.interval_ns is None:
        return config.restart_overhead_ns + fail_time_ns
    replay = math.fmod(fail_time_ns, config.interval_ns)
    return config.restart_overhead_ns + config.snapshot_ns + replay


def resilience_overheads(
    config: Optional[CheckpointConfig],
    total_ns: float,
    failure_times_ns: Sequence[float],
) -> Tuple[int, float, float]:
    """(num_checkpoints, checkpoint_overhead_ns, restart_lost_ns)."""
    if config is None:
        ckpts, ckpt_ns = 0, 0.0
    else:
        ckpts = num_checkpoints(config, total_ns)
        ckpt_ns = checkpoint_overhead_ns(config, total_ns)
    restart_ns = sum(restart_cost_ns(config, t) for t in failure_times_ns)
    return ckpts, ckpt_ns, restart_ns


def optimal_interval_ns(snapshot_ns: float, mtbf_ns: float) -> float:
    """Young's approximation of the optimal checkpoint interval."""
    if snapshot_ns < 0 or mtbf_ns <= 0:
        raise ValueError("snapshot_ns must be >= 0 and mtbf_ns positive")
    return math.sqrt(2.0 * snapshot_ns * mtbf_ns)

"""Runtime fault injection: timed activation and hot-path stretch hooks.

The :class:`FaultInjector` turns a :class:`~repro.faults.spec.FaultSchedule`
into engine events (activation and clearing, fired ahead of same-time
work) and maintains the *active* fault state the simulation layers
consult:

- :class:`~repro.network.analytical.AnalyticalNetwork` scales per-dim
  serialization bandwidth (``bandwidth_scale``) and a sender's injection
  time (``stretch_p2p``) — degraded links slow in-flight traffic and
  every phase planned after the fault activates;
- :class:`~repro.system.collective_op.CollectiveOperation` stretches each
  phase's port time (``stretch_collective``) by the *worst* member — the
  straggler-amplification effect where one slow rank paces the whole
  ring step;
- :class:`~repro.core.engine.ExecutionEngine` stretches compute on
  straggler NPUs (``stretch_compute``) and freezes stalled NPUs.

Every layer guards its hook behind ``if faults is not None``; an absent
(or empty) schedule never installs an injector, so fault-free runs take
exactly the pre-fault code path and stay bit-identical.

Stretch hooks also *attribute*: the extra nanoseconds they inject are
charged to the active faults that caused them (split evenly when several
contribute), producing the per-fault column of the
:class:`~repro.stats.resilience.ResilienceReport`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.faults.checkpoint import CheckpointConfig, resilience_overheads
from repro.faults.spec import FaultKind, FaultSchedule, FaultSpec, FaultSpecError
from repro.stats.resilience import FaultRecord, ResilienceReport

#: Activation/clearing events outrank same-time workload events so a
#: fault scheduled at t affects everything issued at t.
FAULT_EVENT_PRIORITY = -100


class FaultInjector:
    """Injects a schedule into one simulation and tracks its impact."""

    def __init__(self, schedule: FaultSchedule, topology) -> None:
        self.schedule = schedule
        self.topology = topology
        for fault in schedule:
            if fault.npu is not None and fault.npu >= topology.num_npus:
                raise FaultSpecError(
                    f"fault {fault.describe()!r} targets npu {fault.npu} but "
                    f"the topology has {topology.num_npus} NPUs")
            if fault.dim is not None and fault.dim >= topology.num_dims:
                raise FaultSpecError(
                    f"fault {fault.describe()!r} targets dim {fault.dim} but "
                    f"the topology has {topology.num_dims} dimensions")
        self.records: List[FaultRecord] = [FaultRecord(f) for f in schedule]
        self._record_of: Dict[int, FaultRecord] = {
            id(r.fault): r for r in self.records
        }
        self.failure_times: List[float] = []
        self.engine = None
        self._execution = None
        # Active state, all sparse: only faulted targets have entries.
        self._stragglers: Dict[int, List[FaultSpec]] = {}
        self._dim_faults: Dict[int, List[FaultSpec]] = {}
        self._link_faults: Dict[Tuple[int, int], List[FaultSpec]] = {}
        # O(1) fast path: outside every fault's active window the stretch
        # hooks are identities, and the flag check keeps their cost
        # unmeasurable (benchmarks/test_fault_overhead.py).
        self.idle = True

    # -- installation ------------------------------------------------------------

    def install(self, engine, network, execution=None) -> None:
        """Attach to a run: register hooks and schedule fault events."""
        self.engine = engine
        network.faults = self
        self._execution = execution
        if execution is not None:
            execution.faults = self
        for fault in self.schedule:
            engine.schedule_at(fault.start_ns, self._activate, fault,
                               priority=FAULT_EVENT_PRIORITY)

    # -- lifecycle events --------------------------------------------------------

    def _activate(self, fault: FaultSpec) -> None:
        record = self._record_of[id(fault)]
        record.activated_ns = self.engine.now
        kind = fault.kind
        if kind is FaultKind.STRAGGLER:
            self._stragglers.setdefault(fault.npu, []).append(fault)
        elif kind is FaultKind.DEGRADE:
            self._dim_faults.setdefault(fault.dim, []).append(fault)
        elif kind is FaultKind.LINK_DOWN:
            self._link_faults.setdefault((fault.dim, fault.npu), []).append(fault)
        elif kind is FaultKind.STALL:
            if self._execution is not None:
                stalled = self._execution.stall_npu(fault.npu, fault.duration_ns)
                record.extra_ns += stalled
        elif kind is FaultKind.NPU_FAIL:
            self.failure_times.append(self.engine.now)
        self._update_idle()
        if fault.duration_ns is not None and kind is not FaultKind.STALL:
            self.engine.schedule_at(fault.end_ns, self._clear, fault,
                                    priority=FAULT_EVENT_PRIORITY)
        elif kind is FaultKind.STALL:
            # The stall itself already reserved the NPU; close the record.
            self.engine.schedule_at(fault.end_ns, self._mark_cleared, fault,
                                    priority=FAULT_EVENT_PRIORITY)

    def _clear(self, fault: FaultSpec) -> None:
        kind = fault.kind
        if kind is FaultKind.STRAGGLER:
            self._discard(self._stragglers, fault.npu, fault)
        elif kind is FaultKind.DEGRADE:
            self._discard(self._dim_faults, fault.dim, fault)
        elif kind is FaultKind.LINK_DOWN:
            self._discard(self._link_faults, (fault.dim, fault.npu), fault)
        self._update_idle()
        self._mark_cleared(fault)

    def _mark_cleared(self, fault: FaultSpec) -> None:
        self._record_of[id(fault)].cleared_ns = self.engine.now

    def _update_idle(self) -> None:
        self.idle = not (self._stragglers or self._dim_faults
                          or self._link_faults)

    @staticmethod
    def _discard(table: Dict, key, fault: FaultSpec) -> None:
        entries = table.get(key)
        if entries is None:
            return
        entries = [f for f in entries if f is not fault]
        if entries:
            table[key] = entries
        else:
            del table[key]

    # -- attribution -------------------------------------------------------------

    def _charge(self, faults: List[FaultSpec], extra_ns: float) -> None:
        if extra_ns <= 0.0 or not faults:
            return
        share = extra_ns / len(faults)
        for fault in faults:
            self._record_of[id(fault)].extra_ns += share

    # -- hot-path state queries (only reachable when installed) -------------------

    def compute_factor(self, npu: int) -> float:
        """Combined slowdown of active stragglers on ``npu`` (>= 1)."""
        if self.idle:
            return 1.0
        factor = 1.0
        for fault in self._stragglers.get(npu, ()):
            factor *= fault.factor
        return factor

    def bandwidth_scale(self, dim: int) -> float:
        """Remaining-bandwidth fraction of dimension ``dim`` (<= 1)."""
        if self.idle:
            return 1.0
        scale = 1.0
        for fault in self._dim_faults.get(dim, ()):
            scale *= fault.factor
        return scale

    def link_scale(self, dim: int, npu: int) -> float:
        """Remaining fraction of one NPU's egress link into ``dim``."""
        scale = 1.0
        for fault in self._link_faults.get((dim, npu), ()):
            scale *= fault.factor
        return scale

    def stretch_compute(self, npu: int, duration_ns: float) -> float:
        """Stretch one compute node on a (possibly) straggling NPU."""
        if self.idle:
            return duration_ns
        contributors = self._stragglers.get(npu)
        if not contributors:
            return duration_ns
        stretched = duration_ns * self.compute_factor(npu)
        self._charge(list(contributors), stretched - duration_ns)
        return stretched

    def stretch_p2p(self, src: int, dim: int, inject_ns: float) -> float:
        """Stretch a point-to-point injection from ``src`` into ``dim``.

        Covers the sender's straggler slowdown and its egress-link health;
        whole-dimension degradation is already folded into
        ``serialization_time`` via :meth:`bandwidth_scale`.
        """
        if self.idle:
            return inject_ns
        contributors = list(self._stragglers.get(src, ()))
        contributors += self._link_faults.get((dim, src), ())
        if not contributors:
            return inject_ns
        scale = self.compute_factor(src) / self.link_scale(dim, src)
        stretched = inject_ns * scale
        self._charge(contributors, stretched - inject_ns)
        return stretched

    def stretch_collective(
        self, dim: int, members: Optional[FrozenSet[int]], busy_ns: float
    ) -> float:
        """Stretch one collective phase on ``dim`` by its worst member.

        A synchronous ring/tree step finishes when its slowest participant
        does, so the *maximum* straggler slowdown and the *minimum* link
        health among the members pace every member — the straggler
        amplification effect.  ``members`` of ``None`` means the whole
        machine (conservative for directly-constructed operations).
        """
        if self.idle:
            return busy_ns
        worst = 1.0
        contributors: List[FaultSpec] = []

        for npu, faults in self._stragglers.items():
            if members is not None and npu not in members:
                continue
            factor = 1.0
            for fault in faults:
                factor *= fault.factor
            if factor > worst:
                worst = factor
                contributors = list(faults)

        weakest_link = 1.0
        link_contributors: List[FaultSpec] = []
        for (fault_dim, npu), faults in self._link_faults.items():
            if fault_dim != dim:
                continue
            if members is not None and npu not in members:
                continue
            scale = 1.0
            for fault in faults:
                scale *= fault.factor
            if scale < weakest_link:
                weakest_link = scale
                link_contributors = list(faults)

        dim_scale = 1.0
        dim_contributors = self._dim_faults.get(dim, ())
        for fault in dim_contributors:
            dim_scale *= fault.factor

        scale = worst / (weakest_link * dim_scale)
        if scale == 1.0:
            return busy_ns
        stretched = busy_ns * scale
        self._charge(contributors + link_contributors + list(dim_contributors),
                     stretched - busy_ns)
        return stretched

    # -- reporting ----------------------------------------------------------------

    def report(
        self,
        total_ns: float,
        checkpoint: Optional[CheckpointConfig] = None,
        baseline_ns: Optional[float] = None,
    ) -> ResilienceReport:
        """Summarize the finished run into a :class:`ResilienceReport`."""
        ckpts, ckpt_ns, restart_ns = resilience_overheads(
            checkpoint, total_ns, self.failure_times)
        return ResilienceReport(
            total_ns=total_ns,
            records=list(self.records),
            baseline_ns=baseline_ns,
            checkpoint_interval_ns=(
                checkpoint.interval_ns if checkpoint is not None else None),
            num_checkpoints=ckpts,
            checkpoint_overhead_ns=ckpt_ns,
            restart_lost_ns=restart_ns,
            num_failures=len(self.failure_times),
        )

"""Fault taxonomy, spec-string parser, and seeded schedule generator.

A :class:`FaultSpec` describes one deterministic fault — *what* breaks,
*when*, for *how long*, and *how badly*.  A :class:`FaultSchedule` is an
ordered, immutable collection of them, either hand-written (parsed from
spec strings) or drawn from a seeded random process so fault studies are
reproducible run-to-run.

Spec-string grammar (``@``-separated segments)::

    <kind>@<target>[:<param>]@t=<time>[@for=<duration>]

    straggler@npu3:1.5x@t=2ms            # NPU 3 runs 1.5x slower from 2 ms
    straggler@npu3:1.5x@t=2ms@for=4ms    # ...and recovers at 6 ms
    stall@npu7@t=1ms@for=500us           # NPU 7 frozen for 500 us
    degrade@dim1:0.5x@t=0                # dim 1 bandwidth halved
    linkdown@dim1:link4@t=5ms            # NPU 4's dim-1 link fails
    fail@npu12@t=8ms                     # permanent failure -> restart

Times accept ``ns``/``us``/``ms``/``s`` suffixes (bare numbers are ns).
Factor semantics differ by kind and are validated at construction:
*straggler* factors are slowdowns (>= 1, "1.5x slower"); *degrade* and
*linkdown* factors are the **remaining** bandwidth fraction (0 < f <= 1).
Multiple specs join with ``;``.
"""

from __future__ import annotations

import enum
import random
import re
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple


class FaultSpecError(ValueError):
    """Raised for malformed fault spec strings or invalid field values."""


class FaultKind(enum.Enum):
    """What breaks."""

    STRAGGLER = "straggler"  # one NPU's compute and sends run factor-x slower
    STALL = "stall"  # one NPU frozen (no compute progress) for a duration
    DEGRADE = "degrade"  # a whole dimension's bandwidth scaled by factor
    LINK_DOWN = "linkdown"  # one NPU's egress link into a dimension fails
    NPU_FAIL = "fail"  # permanent loss -> checkpoint restart + replay


#: Remaining-bandwidth fraction a failed link retains.  A dead link on a
#: bidirectional building block forces traffic onto the surviving
#: direction / rerouted path, so the member injects at half rate; an
#: explicit factor in the spec string overrides this.
LINK_DOWN_DEFAULT_FACTOR = 0.5

_TIME_UNITS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

_TIME_RE = re.compile(r"^([0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)(ns|us|ms|s)?$")


def parse_time_ns(text: str) -> float:
    """``"2ms"`` -> 2e6; bare numbers are nanoseconds."""
    match = _TIME_RE.match(text.strip())
    if not match:
        raise FaultSpecError(f"bad time {text!r} (expected e.g. '2ms', '500us')")
    value, unit = match.groups()
    return float(value) * _TIME_UNITS[unit or "ns"]


@dataclass(frozen=True)
class FaultSpec:
    """One fault: kind, onset time, optional duration, target, severity.

    Attributes:
        kind: Fault type (see :class:`FaultKind`).
        start_ns: Activation time.
        duration_ns: Active window; ``None`` means until the end of the
            run (always ``None`` for permanent ``NPU_FAIL``; required for
            ``STALL``).
        npu: Target NPU id (straggler / stall / fail; also the link owner
            for ``LINK_DOWN``).
        dim: Target topology dimension (degrade / linkdown).
        factor: Severity.  Slowdown multiplier >= 1 for stragglers;
            remaining-bandwidth fraction in (0, 1] for degrade/linkdown;
            unused (1.0) for stall/fail.
    """

    kind: FaultKind
    start_ns: float
    duration_ns: Optional[float] = None
    npu: Optional[int] = None
    dim: Optional[int] = None
    factor: float = 1.0

    def __post_init__(self) -> None:
        # Coerce to builtin floats so describe()'s repr-based canonical
        # form stays clean when callers pass numpy scalars.
        object.__setattr__(self, "start_ns", float(self.start_ns))
        if self.duration_ns is not None:
            object.__setattr__(self, "duration_ns", float(self.duration_ns))
        object.__setattr__(self, "factor", float(self.factor))
        if self.start_ns < 0:
            raise FaultSpecError(f"fault start must be >= 0, got {self.start_ns}")
        if self.duration_ns is not None and self.duration_ns <= 0:
            raise FaultSpecError(
                f"fault duration must be positive, got {self.duration_ns}")
        kind = self.kind
        if kind in (FaultKind.STRAGGLER, FaultKind.STALL, FaultKind.NPU_FAIL):
            if self.npu is None or self.npu < 0:
                raise FaultSpecError(f"{kind.value} fault needs a target npu")
        if kind in (FaultKind.DEGRADE, FaultKind.LINK_DOWN):
            if self.dim is None or self.dim < 0:
                raise FaultSpecError(f"{kind.value} fault needs a target dim")
        if kind is FaultKind.LINK_DOWN and (self.npu is None or self.npu < 0):
            raise FaultSpecError("linkdown fault needs a link (owning npu) index")
        if kind is FaultKind.STRAGGLER and self.factor < 1.0:
            raise FaultSpecError(
                f"straggler factor is a slowdown (>= 1), got {self.factor}")
        if kind in (FaultKind.DEGRADE, FaultKind.LINK_DOWN) and not (
                0.0 < self.factor <= 1.0):
            raise FaultSpecError(
                f"{kind.value} factor is a remaining-bandwidth fraction in "
                f"(0, 1], got {self.factor}")
        if kind is FaultKind.STALL and self.duration_ns is None:
            raise FaultSpecError("stall fault needs a duration (@for=...)")
        if kind is FaultKind.NPU_FAIL and self.duration_ns is not None:
            raise FaultSpecError("fail is permanent; it cannot take @for=...")

    @property
    def end_ns(self) -> float:
        """Clearing time; ``inf`` for open-ended / permanent faults."""
        if self.duration_ns is None:
            return float("inf")
        return self.start_ns + self.duration_ns

    def describe(self) -> str:
        """Canonical spec-string form (parses back to an equal spec).

        Values print via :func:`repr`, the shortest digit string that
        round-trips the exact float — ``%g``-style formatting would
        silently truncate to 6 significant digits.
        """
        kind = self.kind
        if kind is FaultKind.STRAGGLER:
            target = f"npu{self.npu}:{self.factor!r}x"
        elif kind is FaultKind.STALL or kind is FaultKind.NPU_FAIL:
            target = f"npu{self.npu}"
        elif kind is FaultKind.LINK_DOWN:
            target = f"dim{self.dim}:link{self.npu}"
            if self.factor != LINK_DOWN_DEFAULT_FACTOR:
                target += f":{self.factor!r}x"
        else:  # DEGRADE
            target = f"dim{self.dim}:{self.factor!r}x"
        text = f"{kind.value}@{target}@t={self.start_ns!r}ns"
        if self.duration_ns is not None and kind is not FaultKind.NPU_FAIL:
            text += f"@for={self.duration_ns!r}ns"
        return text

    def __str__(self) -> str:
        return self.describe()


_FACTOR_RE = re.compile(r"^([0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)x$")


def _parse_factor(token: str, context: str) -> float:
    match = _FACTOR_RE.match(token)
    if not match:
        raise FaultSpecError(f"bad factor {token!r} in {context!r} "
                             "(expected e.g. '1.5x')")
    return float(match.group(1))


def _parse_index(token: str, prefix: str, context: str) -> int:
    if not token.startswith(prefix) or not token[len(prefix):].isdigit():
        raise FaultSpecError(
            f"bad target {token!r} in {context!r} (expected '{prefix}<N>')")
    return int(token[len(prefix):])


def parse_fault(text: str) -> FaultSpec:
    """Parse one spec string (grammar in the module docstring)."""
    raw = text.strip()
    segments = [s.strip() for s in raw.split("@") if s.strip()]
    if len(segments) < 3:
        raise FaultSpecError(
            f"bad fault spec {raw!r}: expected kind@target@t=<time>")
    kind_token, target = segments[0], segments[1]
    try:
        kind = FaultKind(kind_token.lower())
    except ValueError:
        valid = ", ".join(k.value for k in FaultKind)
        raise FaultSpecError(
            f"unknown fault kind {kind_token!r} in {raw!r} (one of: {valid})")

    start_ns: Optional[float] = None
    duration_ns: Optional[float] = None
    for segment in segments[2:]:
        if segment.startswith("t="):
            start_ns = parse_time_ns(segment[2:])
        elif segment.startswith("for="):
            duration_ns = parse_time_ns(segment[4:])
        else:
            raise FaultSpecError(
                f"bad clause {segment!r} in {raw!r} "
                "(expected 't=<time>' or 'for=<duration>')")
    if start_ns is None:
        raise FaultSpecError(f"fault spec {raw!r} is missing its 't=<time>'")

    npu: Optional[int] = None
    dim: Optional[int] = None
    factor = 1.0
    parts = target.split(":")
    if kind is FaultKind.STRAGGLER:
        if len(parts) != 2:
            raise FaultSpecError(
                f"straggler target must be 'npu<N>:<F>x', got {target!r}")
        npu = _parse_index(parts[0], "npu", raw)
        factor = _parse_factor(parts[1], raw)
    elif kind in (FaultKind.STALL, FaultKind.NPU_FAIL):
        if len(parts) != 1:
            raise FaultSpecError(
                f"{kind.value} target must be 'npu<N>', got {target!r}")
        npu = _parse_index(parts[0], "npu", raw)
    elif kind is FaultKind.DEGRADE:
        if len(parts) != 2:
            raise FaultSpecError(
                f"degrade target must be 'dim<D>:<F>x', got {target!r}")
        dim = _parse_index(parts[0], "dim", raw)
        factor = _parse_factor(parts[1], raw)
    else:  # LINK_DOWN
        if len(parts) not in (2, 3):
            raise FaultSpecError(
                f"linkdown target must be 'dim<D>:link<L>[:<F>x]', got {target!r}")
        dim = _parse_index(parts[0], "dim", raw)
        npu = _parse_index(parts[1], "link", raw)
        factor = (_parse_factor(parts[2], raw) if len(parts) == 3
                  else LINK_DOWN_DEFAULT_FACTOR)

    return FaultSpec(kind=kind, start_ns=start_ns, duration_ns=duration_ns,
                     npu=npu, dim=dim, factor=factor)


def parse_faults(text: str) -> Tuple[FaultSpec, ...]:
    """Parse a ``;``-separated list of fault specs."""
    return tuple(parse_fault(part) for part in text.split(";") if part.strip())


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-ordered set of faults to inject into one run.

    Truthiness reflects content: an empty schedule is falsy, and the
    simulator treats it exactly like no schedule at all (the hooks stay
    unreachable, so results are bit-identical to a fault-free build).
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: Optional[int] = None  # provenance when generated; informational

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults",
                           tuple(sorted(self.faults, key=lambda f: f.start_ns)))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def describe(self) -> str:
        return ";".join(f.describe() for f in self.faults)

    @classmethod
    def empty(cls) -> "FaultSchedule":
        return cls(())

    @classmethod
    def parse(cls, text: str) -> "FaultSchedule":
        return cls(parse_faults(text))

    @classmethod
    def merge(cls, schedules: Iterable["FaultSchedule"]) -> "FaultSchedule":
        faults: Tuple[FaultSpec, ...] = ()
        seed = None
        for schedule in schedules:
            faults += schedule.faults
            seed = schedule.seed if schedule.seed is not None else seed
        return cls(faults, seed=seed)

    @classmethod
    def generate(
        cls,
        seed: int,
        num_npus: int,
        num_dims: int,
        horizon_ns: float,
        straggler_mtbf_ns: Optional[float] = None,
        stall_mtbf_ns: Optional[float] = None,
        degrade_mtbf_ns: Optional[float] = None,
        linkdown_mtbf_ns: Optional[float] = None,
        fail_mtbf_ns: Optional[float] = None,
        straggler_factor: Tuple[float, float] = (1.2, 2.0),
        straggler_duration_ns: Tuple[float, float] = (1e6, 10e6),
        stall_duration_ns: Tuple[float, float] = (0.1e6, 2e6),
        degrade_factor: Tuple[float, float] = (0.3, 0.9),
        degrade_duration_ns: Tuple[float, float] = (1e6, 10e6),
    ) -> "FaultSchedule":
        """Draw a schedule from seeded Poisson fault processes.

        Each ``*_mtbf_ns`` is a **fleet-level** mean time between faults
        of that kind (exponential inter-arrival times over ``horizon_ns``);
        ``None`` disables the kind.  The same seed and arguments always
        produce the same schedule — Python's :class:`random.Random` is
        stable across runs and versions.
        """
        if num_npus < 1:
            raise FaultSpecError(f"num_npus must be >= 1, got {num_npus}")
        if num_dims < 1:
            raise FaultSpecError(f"num_dims must be >= 1, got {num_dims}")
        if horizon_ns <= 0:
            raise FaultSpecError(f"horizon_ns must be positive, got {horizon_ns}")
        rng = random.Random(seed)
        faults = []

        def arrivals(mtbf: Optional[float]):
            times = []
            if mtbf is None:
                return times
            if mtbf <= 0:
                raise FaultSpecError(f"MTBF must be positive, got {mtbf}")
            t = rng.expovariate(1.0 / mtbf)
            while t < horizon_ns:
                times.append(t)
                t += rng.expovariate(1.0 / mtbf)
            return times

        for t in arrivals(straggler_mtbf_ns):
            faults.append(FaultSpec(
                kind=FaultKind.STRAGGLER, start_ns=t,
                duration_ns=rng.uniform(*straggler_duration_ns),
                npu=rng.randrange(num_npus),
                factor=rng.uniform(*straggler_factor)))
        for t in arrivals(stall_mtbf_ns):
            faults.append(FaultSpec(
                kind=FaultKind.STALL, start_ns=t,
                duration_ns=rng.uniform(*stall_duration_ns),
                npu=rng.randrange(num_npus)))
        for t in arrivals(degrade_mtbf_ns):
            faults.append(FaultSpec(
                kind=FaultKind.DEGRADE, start_ns=t,
                duration_ns=rng.uniform(*degrade_duration_ns),
                dim=rng.randrange(num_dims),
                factor=rng.uniform(*degrade_factor)))
        for t in arrivals(linkdown_mtbf_ns):
            faults.append(FaultSpec(
                kind=FaultKind.LINK_DOWN, start_ns=t,
                duration_ns=rng.uniform(*degrade_duration_ns),
                dim=rng.randrange(num_dims), npu=rng.randrange(num_npus),
                factor=LINK_DOWN_DEFAULT_FACTOR))
        for t in arrivals(fail_mtbf_ns):
            faults.append(FaultSpec(
                kind=FaultKind.NPU_FAIL, start_ns=t,
                npu=rng.randrange(num_npus)))
        return cls(tuple(faults), seed=seed)

"""Deterministic fault injection and resilience modeling.

Turns the simulator from an ideal-hardware cost model into a resilience
design-space-exploration tool: seeded, reproducible fault schedules
(stragglers, stalls, link degradation/failure, permanent NPU loss) are
injected into a run, and a :class:`~repro.stats.resilience.ResilienceReport`
accounts for the time they cost — including the analytic
checkpoint/restart overheads of permanent failures.

Quickstart::

    import repro
    from repro.faults import FaultSchedule

    topo = repro.parse_topology("Ring(16)", [100])
    traces = repro.generate_single_collective(
        topo, repro.CollectiveType.ALL_REDUCE, payload_bytes=1 << 28)
    config = repro.SystemConfig(
        topology=topo,
        faults=FaultSchedule.parse("straggler@npu3:1.5x@t=0"))
    result = repro.simulate(traces, config)
    print(result.resilience.format())
"""

from repro.faults.checkpoint import (
    CheckpointConfig,
    checkpoint_overhead_ns,
    num_checkpoints,
    optimal_interval_ns,
    resilience_overheads,
    restart_cost_ns,
)
from repro.faults.injector import FaultInjector
from repro.faults.spec import (
    LINK_DOWN_DEFAULT_FACTOR,
    FaultKind,
    FaultSchedule,
    FaultSpec,
    FaultSpecError,
    parse_fault,
    parse_faults,
    parse_time_ns,
)

__all__ = [
    "CheckpointConfig",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "FaultSpec",
    "FaultSpecError",
    "LINK_DOWN_DEFAULT_FACTOR",
    "checkpoint_overhead_ns",
    "num_checkpoints",
    "optimal_interval_ns",
    "parse_fault",
    "parse_faults",
    "parse_time_ns",
    "resilience_overheads",
    "restart_cost_ns",
]

#!/usr/bin/env python3
"""Design-space exploration over custom topology shapes.

The point of the taxonomy (paper Sec. IV-B): any multi-dimensional shape
is one string away.  This script fixes a 1024-NPU budget and a total of
600 GB/s injection bandwidth per NPU, then sweeps shapes from 1-D to 4-D
— including a DragonFly-style FC stack and a 3-D torus — measuring a
1 GB All-Reduce and a DLRM iteration on each.

The 24-point sweep (6 shapes x 2 schedulers x 2 workloads) is one
:class:`repro.campaign.SweepSpec`: the shape/bandwidth pairs are a zip
axis, scheduler and workload a grid.  ``--jobs N`` fans it out over a
process pool and ``--cache-dir`` re-uses previous runs — results are
bit-identical either way.

Run:  python examples/custom_topology_dse.py [--jobs N] [--cache-dir D]
"""

import argparse

import repro
from repro.campaign import CampaignRunner, SweepSpec, results_by_config
from repro.stats import format_table

# (notation, bandwidths GB/s) — every design spends the same 600 GB/s/NPU.
CANDIDATES = [
    ("Switch(1024)", "600"),
    ("Switch(32)_Switch(32)", "400,200"),
    ("Ring(16)_FC(8)_Switch(8)", "300,200,100"),
    ("FC(16)_FC(8)_FC(8)", "300,200,100"),             # DragonFly-style
    ("Ring(8)_Ring(16)_Ring(8)", "300,200,100"),       # 3-D torus
    ("Ring(4)_FC(8)_Ring(8)_Switch(4)", "250,200,100,50"),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=0,
                        help="process-pool workers (0 = serial in-process)")
    parser.add_argument("--cache-dir", default=None,
                        help="content-addressed run cache directory")
    args = parser.parse_args()

    for notation, bws in CANDIDATES:
        topology = repro.parse_topology(
            notation, [float(b) for b in bws.split(",")])
        assert topology.num_npus == 1024, notation

    spec = SweepSpec(
        base={"payload_mib": 1024, "chunks": 32},
        zip_axes={
            "topology": [notation for notation, _ in CANDIDATES],
            "bandwidths": [bws for _, bws in CANDIDATES],
        },
        grid={
            "scheduler": ["baseline", "themis"],
            "workload": ["allreduce", "dlrm"],
        },
    )
    runner = CampaignRunner(jobs=args.jobs, cache_dir=args.cache_dir)
    campaign = runner.run(spec)
    assert not campaign.errors, campaign.errors

    by_config = results_by_config(
        campaign.to_dict(), "topology", "scheduler", "workload")
    rows = []
    for notation, _ in CANDIDATES:
        row = [notation]
        for scheduler in ("baseline", "themis"):
            for workload in ("allreduce", "dlrm"):
                result = by_config[(notation, scheduler, workload)]
                row.append(f"{result['total_time_ns'] * 1e-3:.0f}")
        rows.append(row)

    print("1024 NPUs, 600 GB/s per NPU in every design\n")
    print(format_table(
        ["shape", "AR base (us)", "DLRM base (us)",
         "AR themis (us)", "DLRM themis (us)"],
        rows,
    ))
    if args.cache_dir:
        counters = campaign.cache_counters
        print(f"\ncache: {counters['hits']} hits, "
              f"{counters['misses']} misses")
    print(
        "\nTakeaways: with baseline scheduling the shape matters a lot "
        "(bandwidth stranded on idle dimensions); with Themis the designs "
        "converge toward the aggregate-bandwidth bound, and the remaining "
        "spread is the latency/hop structure of each shape."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Design-space exploration over custom topology shapes.

The point of the taxonomy (paper Sec. IV-B): any multi-dimensional shape
is one string away.  This script fixes a 1024-NPU budget and a total of
600 GB/s injection bandwidth per NPU, then sweeps shapes from 1-D to 4-D
— including a DragonFly-style FC stack and a 3-D torus — measuring a
1 GB All-Reduce and a DLRM iteration on each.

Run:  python examples/custom_topology_dse.py
"""

import repro
from repro.stats import format_table
from repro.workload import dlrm_paper, generate_dlrm, generate_single_collective

GiB = 1 << 30

# (notation, bandwidths GB/s) — every design spends the same 600 GB/s/NPU.
CANDIDATES = [
    ("Switch(1024)", [600]),
    ("Switch(32)_Switch(32)", [400, 200]),
    ("Ring(16)_FC(8)_Switch(8)", [300, 200, 100]),
    ("FC(16)_FC(8)_FC(8)", [300, 200, 100]),           # DragonFly-style
    ("Ring(8)_Ring(16)_Ring(8)", [300, 200, 100]),     # 3-D torus
    ("Ring(4)_FC(8)_Ring(8)_Switch(4)", [250, 200, 100, 50]),
]


def main() -> None:
    rows = []
    for notation, bws in CANDIDATES:
        topology = repro.parse_topology(notation, bws)
        assert topology.num_npus == 1024, notation

        ar_traces = generate_single_collective(
            topology, repro.CollectiveType.ALL_REDUCE, GiB)
        dlrm_traces = generate_dlrm(dlrm_paper(), topology)

        row = [notation]
        for scheduler in ("baseline", "themis"):
            config = repro.SystemConfig(
                topology=topology, scheduler=scheduler, collective_chunks=32)
            ar = repro.simulate(ar_traces, config).total_time_us
            dlrm = repro.simulate(dlrm_traces, config).total_time_us
            row.extend([f"{ar:.0f}", f"{dlrm:.0f}"])
        rows.append(row)

    print("1024 NPUs, 600 GB/s per NPU in every design\n")
    print(format_table(
        ["shape", "AR base (us)", "DLRM base (us)",
         "AR themis (us)", "DLRM themis (us)"],
        rows,
    ))
    print(
        "\nTakeaways: with baseline scheduling the shape matters a lot "
        "(bandwidth stranded on idle dimensions); with Themis the designs "
        "converge toward the aggregate-bandwidth bound, and the remaining "
        "spread is the latency/hop structure of each shape."
    )


if __name__ == "__main__":
    main()

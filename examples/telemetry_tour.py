#!/usr/bin/env python3
"""A tour of the unified telemetry layer (docs/observability.md).

One instrumented All-Reduce on a 16-NPU two-dimensional system, then a
walk through every observability output:

1. the metrics registry — counters, gauges, and the differential
   identity (per-dimension byte counters == the analytical backend's
   per-collective traffic);
2. the simulated-time span model and its per-category summary;
3. the wall-clock self-profile;
4. the versioned ``metrics.json`` export;
5. a Perfetto-ready Chrome trace with counter tracks and flow arrows.

Run:  python examples/telemetry_tour.py
"""

import json
import tempfile
from pathlib import Path

import repro
from repro.stats import format_table
from repro.stats.chrometrace import dump_chrome_trace, validate_chrome_trace
from repro.telemetry import dump_metrics_json, load_metrics_json

MiB = 1 << 20


def run_instrumented():
    topo = repro.parse_topology("Ring(4)_Switch(4)", [100, 25])
    traces = repro.generate_single_collective(
        topo, repro.CollectiveType.ALL_REDUCE, 64 * MiB, count=4)
    config = repro.SystemConfig(
        topology=topo, scheduler="themis", collective_chunks=8,
        telemetry=repro.TelemetryConfig(trace_level=repro.TraceLevel.CHUNK))
    return repro.simulate(traces, config)


def show_metrics(report) -> None:
    print("== metrics registry ==")
    rows = []
    for (layer, name, labels), metric in sorted(report.metrics.items()):
        label_text = ",".join(f"{k}={v}" for k, v in labels) or "--"
        payload = metric.to_payload()
        value = payload.get("value", payload.get("last"))
        rows.append([layer, name, label_text, f"{value:g}"])
    print(format_table(["layer", "name", "labels", "value"], rows[:14]))
    print(f"... {len(rows)} metrics total\n")


def show_differential(result) -> None:
    print("== differential identity ==")
    report = result.telemetry
    for dim in (0, 1):
        counted = report.metric_value("network", "dim_traffic_bytes", dim=dim)
        recorded = sum(c.traffic_by_dim.get(dim, 0.0)
                       for c in result.collectives)
        match = "ok" if abs(counted - recorded) < 1e-6 else "MISMATCH"
        print(f"  dim {dim}: counter {counted / MiB:.2f} MiB == "
              f"records {recorded / MiB:.2f} MiB  [{match}]")
    print()


def show_spans(report) -> None:
    print("== spans ==")
    summary = report.spans.summary()
    print(f"  {summary['count']} spans, {summary['flows']} flow arrows")
    for category, count in sorted(summary["by_category"].items()):
        print(f"    {category:12s} {count}")
    print()


def show_profile(report) -> None:
    print("== wall-clock self-profile ==")
    for name, row in report.profile.to_dict().items():
        print(f"  {name:10s} {row['wall_s'] * 1e3:8.2f} ms "
              f"({row['calls']} call(s))")
    print()


def export_everything(result, out_dir: Path) -> None:
    print("== exports ==")
    metrics_path = out_dir / "metrics.json"
    dump_metrics_json(result.telemetry, metrics_path)
    doc = load_metrics_json(metrics_path)
    print(f"  {metrics_path.name}: schema v{doc['schema_version']}, "
          f"{len(doc['metrics'])} metrics, trace level {doc['trace_level']}")

    trace_path = out_dir / "trace.json"
    dump_chrome_trace(result.activity, trace_path,
                      collectives=result.collectives,
                      telemetry=result.telemetry)
    trace = json.loads(trace_path.read_text())
    validate_chrome_trace(trace)
    counters = sum(1 for e in trace["traceEvents"] if e["ph"] == "C")
    flows = sum(1 for e in trace["traceEvents"] if e["ph"] == "s")
    print(f"  {trace_path.name}: {len(trace['traceEvents'])} events "
          f"({counters} counter samples, {flows} flow arrows) — "
          f"load it at https://ui.perfetto.dev")


def main() -> None:
    result = run_instrumented()
    report = result.telemetry
    print(f"simulated {result.total_time_ms:.3f} ms "
          f"({result.events_processed} events)\n")
    show_metrics(report)
    show_differential(result)
    show_spans(report)
    show_profile(report)
    with tempfile.TemporaryDirectory() as tmp:
        export_everything(result, Path(tmp))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Wafer-scale vs conventional systems (the paper's Sec. V-A case study).

Trains GPT-3 (hybrid MP=16 x DP=32) on every Table II 512-NPU system
under both collective schedulers and prints the normalized breakdown —
the data behind Fig. 9(a).

Run:  python examples/wafer_vs_conventional.py
"""

import repro
from repro.configs import TABLE2_TOPOLOGIES
from repro.stats import format_table
from repro.workload import ParallelismSpec, generate_megatron_hybrid, gpt3_175b


def main() -> None:
    model = gpt3_175b()
    print(f"model: {model.name} ({model.total_params / 1e9:.0f}B params), "
          f"MP=16 x DP=32 hybrid parallelism\n")

    rows = []
    baseline_ref = None
    for name, topology in TABLE2_TOPOLOGIES.items():
        traces = generate_megatron_hybrid(
            model, topology, ParallelismSpec(mp=16, dp=32))
        row = [name]
        for scheduler in ("baseline", "themis"):
            config = repro.SystemConfig(
                topology=topology, scheduler=scheduler, collective_chunks=32)
            result = repro.simulate(traces, config)
            if baseline_ref is None:
                baseline_ref = result.total_time_ns
            b = result.breakdown
            row.append(
                f"{result.total_time_ns / baseline_ref:.3f} "
                f"(comm {b.exposed_comm_ns / baseline_ref:.3f})"
            )
        rows.append(row)

    print(format_table(
        ["system", "baseline (norm)", "themis (norm)"], rows))
    print(
        "\nReading the table (paper Sec. V-A):\n"
        " - 1-D wafer systems gain nothing from smart scheduling;\n"
        " - multi-dimensional systems close most of their gap with Themis;\n"
        " - the wafer keeps an edge on hybrid-parallel models because MP/DP\n"
        "   communicators use every GB/s of the wafer but only a subset of\n"
        "   a conventional system's dimensions."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Pipeline parallelism: different NPUs run different operations.

The original ASTRA-sim assumed every NPU executes the same operation at
the same time, which rules out pipeline parallelism; the graph-based
execution engine lifts that (paper Secs. III-A, IV-A).  This script runs
GPT-3 with MP=4 x PP=8 x DP=16 on a 512-NPU system, sweeping the
microbatch count to show the pipeline-bubble (idle) fraction shrinking —
behaviour only a per-NPU execution engine can capture.

Run:  python examples/pipeline_parallelism.py
"""

import repro
from repro.stats import format_table
from repro.workload import ParallelismSpec, generate_pipeline_parallel, gpt3_175b


def main() -> None:
    topology = repro.parse_topology(
        "Ring(4)_FC(8)_Ring(8)_Switch(2)", [250, 200, 100, 50])
    spec = ParallelismSpec(mp=4, pp=8, dp=2 * 8)
    model = gpt3_175b()
    print(f"{model.name} on {topology.notation()} "
          f"(MP={spec.mp} x PP={spec.pp} x DP={spec.dp})\n")

    rows = []
    for microbatches in (1, 2, 4, 8, 16):
        traces = generate_pipeline_parallel(
            model, topology, spec, microbatches=microbatches)
        config = repro.SystemConfig(
            topology=topology, scheduler="themis", collective_chunks=16)
        result = repro.simulate(traces, config)
        idle_frac = result.breakdown.idle_ns / result.total_time_ns
        per_micro = result.total_time_ms / microbatches
        rows.append([
            microbatches,
            len(traces),
            f"{result.total_time_ms:.1f}",
            f"{per_micro:.1f}",
            f"{100 * idle_frac:.1f}%",
        ])

    print(format_table(
        ["microbatches", "stage traces", "iteration (ms)",
         "ms / microbatch", "pipeline bubble"],
        rows,
    ))
    print(
        "\nWith more microbatches the per-microbatch cost falls and the "
        "bubble fraction shrinks toward (P-1)/(P-1+M) — the GPipe "
        "steady-state — because stages genuinely execute different "
        "operations concurrently."
    )


if __name__ == "__main__":
    main()

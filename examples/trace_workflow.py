#!/usr/bin/env python3
"""The execution-trace workflow: collect -> convert -> store -> simulate.

Mirrors the paper's Sec. IV-A pipeline: a framework-native trace (here, a
PyTorch ExecutionGraphObserver-style JSON, as produced by Snippet 1 of
the paper) is converted to the common ASTRA-sim ET format, saved to disk,
reloaded, and simulated.

Run:  python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

import repro
from repro.trace.converters import convert_pytorch_eg

MB = 1 << 20


def collect_pytorch_eg() -> dict:
    """Stand-in for the ExecutionGraphObserver dump of one rank.

    Two transformer-ish layers: matmul -> NCCL all-reduce of activations
    (tensor parallel) -> matmul -> gradient all-reduce (data parallel),
    with data flow recorded through tensor ids.
    """
    return {
        "schema": "pytorch-eg",
        "rank": 0,
        "nodes": [
            {"id": 1, "name": "aten::embedding", "inputs": [], "outputs": [10],
             "flops": 1_000_000, "tensor_bytes": 8 * MB},
            {"id": 2, "name": "aten::mm", "inputs": [10], "outputs": [11],
             "flops": 400_000_000_000, "tensor_bytes": 16 * MB},
            {"id": 3, "name": "nccl:all_reduce", "inputs": [11],
             "outputs": [12], "tensor_bytes": 16 * MB, "comm_dims": [0]},
            {"id": 4, "name": "aten::mm", "inputs": [12], "outputs": [13],
             "flops": 400_000_000_000, "tensor_bytes": 16 * MB},
            {"id": 5, "name": "autograd::engine", "inputs": [13],
             "outputs": [14]},  # control-only: elided by the converter
            {"id": 6, "name": "aten::mm", "inputs": [14], "outputs": [15],
             "flops": 800_000_000_000, "tensor_bytes": 16 * MB},
            {"id": 7, "name": "nccl:all_reduce", "inputs": [15],
             "outputs": [16], "tensor_bytes": 128 * MB, "comm_dims": [1]},
            {"id": 8, "name": "aten::copy_", "inputs": [16], "outputs": [17],
             "tensor_bytes": 128 * MB, "direction": "store"},
        ],
    }


def main() -> None:
    # 1. Convert the framework trace to the common ET format.
    trace = convert_pytorch_eg(collect_pytorch_eg())
    print(f"converted: {len(trace)} ET nodes "
          f"(control-only nodes elided), kinds: "
          f"{ {k.value: v for k, v in trace.count_by_type().items()} }")

    # 2. Round-trip through the on-disk format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "rank0_et.json"
        repro.save_trace(trace, path)
        restored = repro.load_trace(path)
        print(f"saved + reloaded: {path.name} "
              f"({path.stat().st_size} bytes, {len(restored)} nodes)")

    # 3. Simulate it on a DGX-like 2-D system: NVLink in-node, NIC out.
    topology = repro.parse_topology("Switch(8)_Switch(16)", [300, 25])
    config = repro.SystemConfig(topology=topology, scheduler="themis")
    result = repro.simulate({0: restored}, config)
    b = result.breakdown
    print(f"\nsimulated on {topology.notation()}: "
          f"{result.total_time_ms:.2f} ms total")
    print(f"  compute            {b.compute_ns * 1e-6:8.2f} ms")
    print(f"  exposed local mem  {b.exposed_mem_local_ns * 1e-6:8.2f} ms")
    print(f"  exposed comm       {b.exposed_comm_ns * 1e-6:8.2f} ms")
    for record in result.collectives:
        print(f"  collective {record.name!r}: {record.duration_ns / 1e3:.1f} us "
              f"over {record.group_size} NPUs")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""First-order congestion study with timeline visualization.

The paper's analytical backend assumes congestion-free topology-aware
collectives and lists first-order congestion modeling as future work
(Sec. IV-C, footnote 5).  This repo implements it via per-dimension
fabric oversubscription.  The script sweeps the oversubscription of a
DGX-like cluster's scale-out fabric for a GPT-3 iteration, shows the
bandwidth-aware scheduler routing around the congested dimension, and
renders a per-NPU activity timeline for a pipeline-parallel run.

Run:  python examples/congestion_study.py
"""

import dataclasses

import repro

from repro.network import MultiDimTopology
from repro.stats import format_table, render_timeline
from repro.workload import (
    ParallelismSpec,
    generate_megatron_hybrid,
    generate_pipeline_parallel,
    gpt3_175b,
)


def oversubscribed(topology, dim, ratio):
    dims = list(topology.dims)
    dims[dim] = dataclasses.replace(dims[dim], oversubscription=ratio)
    return MultiDimTopology(dims, name=f"{topology.name}-os{ratio:g}")


def main() -> None:
    # A three-level cluster: NVLink in node, a rail fabric across 4 nodes
    # per pod, and a spine across 4 pods; DP communicators span both
    # scale-out levels, so a congested rail can be routed around.
    base = repro.parse_topology(
        "Switch(8)_Switch(4)_Switch(4)", [300, 50, 25],
        latencies_ns=[250, 700, 1000])
    print(f"system: {base.notation()} ({base.num_npus} GPUs)\n")

    rows = []
    for ratio in (1.0, 2.0, 4.0, 8.0):
        topology = oversubscribed(base, dim=1, ratio=ratio)
        traces = generate_megatron_hybrid(
            gpt3_175b(), topology, ParallelismSpec(mp=8, dp=16))
        row = [f"{ratio:g}:1"]
        for scheduler in ("baseline", "themis"):
            result = repro.simulate(traces, repro.SystemConfig(
                topology=topology, scheduler=scheduler))
            row.append(f"{result.total_time_ms:.0f}")
            row.append(f"{result.breakdown.exposed_comm_ns * 1e-6:.0f}")
        rows.append(row)
    print(format_table(
        ["rail oversubscription", "baseline (ms)", "  comm (ms)",
         "themis (ms)", "  comm (ms)"], rows))
    print(
        "\nThe DP communicator spans the rail and spine dims: the "
        "bandwidth-aware scheduler shifts gradient traffic to the spine "
        "as the rail congests; the fixed hierarchical order cannot."
    )

    print("\nPipeline timeline on the 8:1 fabric (GPT-3, PP=16, 4 microbatches):")
    topology = oversubscribed(base, dim=1, ratio=8.0)
    traces = generate_pipeline_parallel(
        gpt3_175b(), topology, ParallelismSpec(mp=8, pp=16),
        microbatches=4)
    result = repro.simulate(traces, repro.SystemConfig(
        topology=topology, scheduler="themis"))
    print(render_timeline(result.activity, result.total_time_ns, width=72))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: simulate a 1 GB All-Reduce on a hierarchical topology.

Builds the paper's Conv-4D system (Table II), runs a single 1 GB
All-Reduce under both collective schedulers, and prints timing plus the
per-dimension traffic that Table IV tabulates.

Run:  python examples/quickstart.py
"""

import repro

GiB = 1 << 30


def main() -> None:
    # A 512-NPU conventional system: 2 NPUs per package (Ring), 8 packages
    # per board (FullyConnected), 8 boards per pod (Ring), 4 pods behind a
    # switch — with hierarchical bandwidths in GB/s.
    topology = repro.parse_topology(
        "Ring(2)_FC(8)_Ring(8)_Switch(4)",
        bandwidths_gbps=[250, 200, 100, 50],
        latencies_ns=[50, 250, 250, 500],
    )
    print(f"topology: {topology.notation()}  ({topology.num_npus} NPUs, "
          f"{topology.total_bandwidth_gbps():.0f} GB/s per NPU aggregate)")

    # The workload layer emits execution traces; this one is a single
    # collective issued by every NPU (one representative trace suffices
    # for a symmetric communicator).
    traces = repro.generate_single_collective(
        topology, repro.CollectiveType.ALL_REDUCE, payload_bytes=GiB)

    for scheduler in ("baseline", "themis"):
        config = repro.SystemConfig(
            topology=topology, scheduler=scheduler, collective_chunks=32)
        result = repro.simulate(traces, config)
        print(f"\n[{scheduler}] All-Reduce of 1 GiB: "
              f"{result.total_time_us:.1f} us")
        record = result.collectives[0]
        for dim, traffic in sorted(record.traffic_by_dim.items()):
            spec = topology.dims[dim]
            print(f"  dim {dim} ({spec.block.value:>14}({spec.size}) "
                  f"@ {spec.bandwidth_gbps:g} GB/s): "
                  f"{traffic / (1 << 20):8.1f} MiB serialized per NPU")


if __name__ == "__main__":
    main()

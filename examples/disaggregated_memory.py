#!/usr/bin/env python3
"""Disaggregated memory systems for MoE training (Sec. V-B case study).

Compares ZeRO-Infinity, the baseline hierarchical memory pool, and the
optimized pool with in-switch collectives on a 1T-parameter
Mixture-of-Experts model (the data behind Fig. 11), then sketches the
Table V bandwidth sweep.

Run:  python examples/disaggregated_memory.py
"""

import repro
from repro.configs import (
    hiermem_baseline,
    hiermem_opt,
    moe_npu_network,
    zero_infinity_table5,
)
from repro.configs.table5 import hiermem_custom
from repro.stats import format_breakdown_table, format_table
from repro.workload import generate_moe, moe_1t


def main() -> None:
    topology = moe_npu_network()
    model = moe_1t()
    print(f"model: {model.name} ({model.total_params / 1e12:.2f}T params, "
          f"{model.num_experts} experts), {topology.num_npus} GPUs\n")

    breakdowns = {}
    totals = {}
    for name, config, inswitch in (
        ("ZeRO-Infinity", zero_infinity_table5(), False),
        ("HierMem(Baseline)", hiermem_baseline(), False),
        ("HierMem(Opt)", hiermem_opt(), True),
    ):
        traces = generate_moe(model, topology, remote_parameters=True,
                              inswitch_collectives=inswitch)
        result = repro.simulate(traces, config)
        breakdowns[name] = result.breakdown
        totals[name] = result.total_time_ms

    print(format_breakdown_table(breakdowns))
    print(f"\nHierMem(Opt) speedup over baseline: "
          f"{totals['HierMem(Baseline)'] / totals['HierMem(Opt)']:.2f}x")

    # A slice of the Table V design-space sweep: group bandwidth at the
    # baseline fabric, then fabric bandwidth at the best group bandwidth.
    print("\nDesign-space slices (in-switch collectives on):")
    rows = []
    for group_bw in (100, 200, 300, 400, 500):
        traces = generate_moe(model, topology, inswitch_collectives=True)
        t = repro.simulate(
            traces, hiermem_custom(in_node_bw=256, group_bw=group_bw)
        ).total_time_ms
        rows.append([f"fabric 256 / group {group_bw}", f"{t:.1f}"])
    for fabric_bw in (512, 1024, 2048):
        traces = generate_moe(model, topology, inswitch_collectives=True)
        t = repro.simulate(
            traces, hiermem_custom(in_node_bw=fabric_bw, group_bw=500)
        ).total_time_ms
        rows.append([f"fabric {fabric_bw} / group 500", f"{t:.1f}"])
    print(format_table(["configuration (GB/s)", "iteration (ms)"], rows))


if __name__ == "__main__":
    main()

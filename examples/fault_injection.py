#!/usr/bin/env python3
"""Fault injection and resilience design-space exploration.

The paper models ideal hardware; `repro.faults` (docs/modeling.md §8)
injects deterministic fault schedules so resilience becomes a swept
design axis like topology or scheduler.  This script shows the two
canonical sweeps:

1. **Straggler severity**: one slow rank paces a synchronous ring, so a
   1.5x straggler stretches the *whole* Ring(16) All-Reduce ~1.5x — the
   amplification a per-rank mean would miss.
2. **Checkpoint interval vs MTBF**: too-frequent snapshots stall the
   job, too-rare ones replay hours on failure; the sweep brackets
   Young's optimum `sqrt(2 * snapshot * MTBF)`.

Run:  python examples/fault_injection.py
"""

import repro
from repro.faults import (
    CheckpointConfig,
    FaultSchedule,
    optimal_interval_ns,
    restart_cost_ns,
)
from repro.stats import format_table

MiB = 1 << 20


def run_allreduce(topology, faults=None, payload=256 * MiB):
    traces = repro.generate_single_collective(
        topology, repro.CollectiveType.ALL_REDUCE, payload)
    config = repro.SystemConfig(topology=topology, faults=faults)
    return repro.simulate(traces, config)


def straggler_severity_sweep() -> None:
    topo = repro.parse_topology("Ring(16)", [100])
    baseline = run_allreduce(topo).total_time_ns
    print(f"Ring(16) All-Reduce, 256 MiB, baseline "
          f"{baseline / 1e6:.3f} ms\n")

    rows = []
    for factor in (1.0, 1.1, 1.25, 1.5, 2.0, 3.0):
        if factor == 1.0:
            total = baseline
        else:
            schedule = FaultSchedule.parse(f"straggler@npu3:{factor}x@t=0")
            total = run_allreduce(topo, faults=schedule).total_time_ns
        rows.append([f"{factor:g}x", f"{total / 1e6:.3f}",
                     f"{total / baseline:.3f}"])
    print(format_table(
        ["straggler", "total (ms)", "vs clean"], rows))
    print("\nOne slow rank of sixteen sets the pace of every ring step:\n"
          "collective slowdown tracks the straggler factor, not 1/16 of it.\n")


def seeded_schedule_demo() -> None:
    topo = repro.parse_topology("Ring(16)", [100])
    clean = run_allreduce(topo)
    schedule = FaultSchedule.generate(
        seed=42, num_npus=topo.num_npus, num_dims=topo.num_dims,
        horizon_ns=clean.total_time_ns,
        straggler_mtbf_ns=clean.total_time_ns / 4,
        degrade_mtbf_ns=clean.total_time_ns / 4)
    result = run_allreduce(topo, faults=schedule)
    result.resilience.baseline_ns = clean.total_time_ns
    print(f"Seeded schedule (seed=42, {len(schedule)} faults) — "
          "rerunning reproduces this exactly:\n")
    print(result.resilience.format())
    print()


def checkpoint_interval_sweep() -> None:
    # A 24 h training job on hardware with a 6 h fleet MTBF; snapshots
    # persist a 350 GB ZeRO model state at 25 GB/s (14 s each).
    day_ns = 24 * 3600e9
    mtbf_ns = 6 * 3600e9
    snapshot_ns = 350e9 / 25.0
    expected_failures = day_ns / mtbf_ns

    rows = []
    for interval_min in (1, 5, 15, 30, 60, 240, None):
        interval_ns = None if interval_min is None else interval_min * 60e9
        config = CheckpointConfig(
            interval_ns=interval_ns, snapshot_bytes=350e9,
            write_bandwidth_gbps=25.0)
        snapshots = 0 if interval_ns is None else int(day_ns // interval_ns)
        snapshot_cost = snapshots * config.snapshot_ns
        # Expected replay per failure is half an interval; price it at
        # the midpoint instead of simulating many seeds.
        midpoint = (interval_ns / 2 if interval_ns is not None
                    else day_ns / 2)
        restart_cost = expected_failures * restart_cost_ns(config, midpoint)
        lost = snapshot_cost + restart_cost
        rows.append([
            "none" if interval_min is None else f"{interval_min:g} min",
            f"{snapshot_cost / 3600e9:.2f}",
            f"{restart_cost / 3600e9:.2f}",
            f"{lost / 3600e9:.2f}",
            f"{day_ns / (day_ns + lost):.1%}",
        ])
    print("Checkpoint-interval sweep: 24 h job, 6 h MTBF, 14 s snapshots\n")
    print(format_table(
        ["interval", "snapshot (h)", "restart (h)", "lost (h)", "goodput"],
        rows))
    optimum = optimal_interval_ns(snapshot_ns, mtbf_ns)
    print(f"\nYoung's optimum: sqrt(2 * snapshot * MTBF) = "
          f"{optimum / 60e9:.1f} min\n")


def main() -> None:
    straggler_severity_sweep()
    seeded_schedule_demo()
    checkpoint_interval_sweep()


if __name__ == "__main__":
    main()

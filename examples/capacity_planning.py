#!/usr/bin/env python3
"""Capacity planning: when does a model need disaggregated memory?

Sec. III-C's motivation made quantitative: estimate per-GPU memory
footprints for GPT-3 and MoE-1T under different parallelization and ZeRO
strategies, check them against HBM capacities, and — where offload is
required — simulate the training iteration on the hierarchical pool to
price the decision.

Run:  python examples/capacity_planning.py
"""

import repro
from repro.configs import hiermem_baseline, hiermem_opt, moe_npu_network
from repro.memory.capacity import (
    check_capacity,
    moe_footprint,
    transformer_footprint,
)
from repro.stats import format_table
from repro.workload import (
    ParallelismSpec,
    generate_moe,
    gpt3_175b,
    moe_1t,
)

GiB = 1 << 30


def main() -> None:
    print("Per-GPU memory footprints (params/grads/optimizer/activations)\n")
    rows = []
    cases = [
        ("GPT-3, MP16xDP32, no ZeRO",
         transformer_footprint(gpt3_175b(), ParallelismSpec(mp=16, dp=32))),
        ("GPT-3, MP16xDP32, ZeRO-1",
         transformer_footprint(gpt3_175b(), ParallelismSpec(mp=16, dp=32),
                               zero_stage=1)),
        ("GPT-3, MP16xDP32, ZeRO-3",
         transformer_footprint(gpt3_175b(), ParallelismSpec(mp=16, dp=32),
                               zero_stage=3)),
        ("MoE-1T, 256 GPUs, ZeRO-3 dense",
         moe_footprint(moe_1t(), num_gpus=256)),
    ]
    for hbm in (40, 80):
        for name, fp in cases:
            report = check_capacity(fp, hbm_gib=hbm)
            rows.append([
                name, hbm,
                f"{fp.total / GiB:.1f}",
                "yes" if report.fits else "no",
                f"{report.offload_bytes / GiB:.1f}",
            ])
    print(format_table(
        ["configuration", "HBM (GiB)", "needs (GiB)", "fits?",
         "offload (GiB)"], rows))

    print(
        "\nMoE-1T spills a 40 GiB HBM (the optimizer state alone is ~45 GiB"
        "\nper GPU) -> its expert parameters stream from the pool."
        "\nPricing that decision on the Table V systems:\n"
    )
    topology = moe_npu_network()
    rows = []
    for name, config, inswitch in (
        ("HierMem(Baseline)", hiermem_baseline(), False),
        ("HierMem(Opt)", hiermem_opt(), True),
    ):
        traces = generate_moe(moe_1t(), topology, remote_parameters=True,
                              inswitch_collectives=inswitch)
        result = repro.simulate(traces, config)
        b = result.breakdown
        rows.append([
            name,
            f"{result.total_time_ms:.1f}",
            f"{b.exposed_mem_remote_ns * 1e-6:.1f}",
            f"{b.exposed_comm_ns * 1e-6:.1f}",
        ])
    print(format_table(
        ["memory system", "iteration (ms)", "exposed remote (ms)",
         "exposed comm (ms)"], rows))


if __name__ == "__main__":
    main()
